"""Active in-fabric adversary: seeded attack injection on wire traffic.

Random link faults (:mod:`repro.interconnect.faults`) shake the channel;
this module *attacks* it.  An :class:`AdversaryInjector` sits on the
delivery path of both transports and, per secured data-block wire copy,
rolls one of seven attacks (see :class:`~repro.configs.AdversaryConfig`):
ciphertext bit-flip, MAC bit-flip, whole-block replay, counter-window
reorder, truncation, cross-link splice, and forge-from-scratch.

The attacker is *link-local*: it owns one (or more) directed wires and can
capture, mutate, re-inject, redirect, and fabricate traffic on them, but
it holds no keys and no pads — every mutated or fabricated block fails the
receiver's MsgMAC.  That asymmetry is the whole experiment: the secure
schemes turn all seven attacks into detections (and recover via the PR-2
ARQ machinery), while the unsecure fabric consumes attacker-controlled
bytes silently.  :class:`AttackReport` keeps the per-attack ledger the
zero-undetected contract is asserted against.

Determinism matches the fault injector: one ``random.Random`` per directed
pair, seeded from ``(config seed, src, dst)``, rolled once per wire copy in
transmission order — verdicts never depend on cross-pair interleaving, so
reports stay bit-identical across serial / parallel / cached execution.

Quarantine interacts with the injector through :meth:`on_quarantine`:
once a directed link is rerouted, the attacker sitting on the physical
wire loses access to that pair's traffic and ``decide`` stops attacking it
(without consuming rolls, which keeps the surviving pairs' streams
aligned).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.configs import AdversaryConfig


class AttackKind(Enum):
    """One attacker action against a single wire copy."""

    FLIP_CIPHER = "flip_cipher"  # ciphertext bit-flip
    FLIP_MAC = "flip_mac"  # MAC-tag bit-flip
    REPLAY = "replay"  # exact re-injection of a captured block
    REORDER = "reorder"  # held back so later counters overtake
    TRUNCATE = "truncate"  # block cut short on the wire
    SPLICE = "splice"  # redirected onto another directed link
    FORGE = "forge"  # fabricated from scratch, no captured material


#: Attacks that mutate the authenticated material of an existing block —
#: a secure receiver must reject every one of them at MsgMAC verification.
TAMPER_KINDS = frozenset(
    {AttackKind.FLIP_CIPHER, AttackKind.FLIP_MAC, AttackKind.TRUNCATE,
     AttackKind.SPLICE, AttackKind.FORGE}
)

#: Attack kinds whose injected copy carries a counter the receiver may
#: legitimately see again (alien or fabricated) — never added to the
#: receiver's seen-set, so they cannot poison later legitimate traffic.
ALIEN_KINDS = frozenset({AttackKind.SPLICE, AttackKind.FORGE})

_KIND_ORDER = (
    AttackKind.FLIP_CIPHER,
    AttackKind.FLIP_MAC,
    AttackKind.REPLAY,
    AttackKind.REORDER,
    AttackKind.TRUNCATE,
    AttackKind.SPLICE,
    AttackKind.FORGE,
)

_KIND_RATES = {
    AttackKind.FLIP_CIPHER: "flip_cipher_rate",
    AttackKind.FLIP_MAC: "flip_mac_rate",
    AttackKind.REPLAY: "replay_rate",
    AttackKind.REORDER: "reorder_rate",
    AttackKind.TRUNCATE: "truncate_rate",
    AttackKind.SPLICE: "splice_rate",
    AttackKind.FORGE: "forge_rate",
}


class AdversaryInjector:
    """Seeded per-pair attack verdicts for every data-block wire copy."""

    __slots__ = ("cfg", "_rngs", "_nodes", "_quarantined")

    def __init__(self, cfg: AdversaryConfig, nodes: list[int]) -> None:
        self.cfg = cfg
        self._rngs: dict[tuple[int, int], random.Random] = {}
        self._nodes = list(nodes)
        self._quarantined: set[tuple[int, int]] = set()

    def _rng(self, src: int, dst: int) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            # String seeding hashes through SHA-512: stable across processes
            # and Python versions (same scheme as the fault injector).
            rng = random.Random(f"adv:{self.cfg.seed}:{src}->{dst}")
            self._rngs[key] = rng
        return rng

    def decide(self, src: int, dst: int) -> AttackKind | None:
        """Roll the attacker's action on one (src -> dst) wire copy.

        Quarantined pairs are never attacked *and never rolled*: the
        traffic left the compromised wire, so the attacker cannot even
        observe it.  Skipping the roll (rather than discarding it) keeps
        the pair's verdict stream a pure function of its pre-quarantine
        transmission count.
        """
        if (src, dst) in self._quarantined:
            return None
        roll = self._rng(src, dst).random()
        cfg = self.cfg
        for kind in _KIND_ORDER:
            rate = getattr(cfg, _KIND_RATES[kind])
            if roll < rate:
                if kind is AttackKind.SPLICE and self.splice_target(src, dst) is None:
                    # Nowhere to redirect (two-node fabric): the capture
                    # degrades to in-place tampering.
                    return AttackKind.FLIP_CIPHER
                return kind
            roll -= rate
        return None

    def splice_target(self, src: int, dst: int) -> int | None:
        """Deterministic third node a spliced (src -> dst) block lands on."""
        for node in self._nodes:
            if node != src and node != dst:
                return node
        return None

    def on_quarantine(self, src: int, dst: int) -> None:
        """The (src -> dst) pair was rerouted off the attacker's wire."""
        self._quarantined.add((src, dst))

    @property
    def quarantined_pairs(self) -> set[tuple[int, int]]:
        return set(self._quarantined)


@dataclass
class AttackReport:
    """Per-attack ledger: what the adversary did and what became of it.

    Every injected attack is eventually resolved into exactly one bucket:

    * ``detected`` — the secure machinery caught it (MsgMAC reject,
      counter replay check) and, where applicable, recovered,
    * ``harmless`` — the attack fired but the system absorbed it without
      a detection being *needed* (a reordered block that still delivered
      exactly once, a replay whose original was already lost to a fault),
    * ``accepted`` — attacker-influenced data reached a consuming device
      unnoticed.  This is the silent-compromise count: the zero-undetected
      contract asserts it stays 0 on every secure scheme, and the unsecure
      fabric's nonzero count is the asymmetry being measured.
    """

    injected: dict[str, int] = field(default_factory=dict)
    detected: dict[str, int] = field(default_factory=dict)
    harmless: dict[str, int] = field(default_factory=dict)
    accepted: dict[str, int] = field(default_factory=dict)
    #: directed links quarantined after repeated detections
    quarantined: list[list[int]] = field(default_factory=list)

    @staticmethod
    def _bump(ledger: dict[str, int], kind: "AttackKind | str") -> None:
        key = kind.value if isinstance(kind, AttackKind) else str(kind)
        ledger[key] = ledger.get(key, 0) + 1

    def note_injected(self, kind: AttackKind | str) -> None:
        self._bump(self.injected, kind)

    def note_detected(self, kind: AttackKind | str) -> None:
        self._bump(self.detected, kind)

    def note_harmless(self, kind: AttackKind | str) -> None:
        self._bump(self.harmless, kind)

    def note_accepted(self, kind: AttackKind | str) -> None:
        self._bump(self.accepted, kind)

    def note_quarantined(self, src: int, dst: int) -> None:
        self.quarantined.append([src, dst])

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_detected(self) -> int:
        return sum(self.detected.values())

    @property
    def total_harmless(self) -> int:
        return sum(self.harmless.values())

    @property
    def accepted_undetected(self) -> int:
        """Attacks that reached a device without anyone noticing."""
        return sum(self.accepted.values())

    @property
    def unresolved(self) -> int:
        """Injected attacks not yet settled into any outcome bucket.

        Nonzero after a completed run would mean an attack's outcome event
        never fired — the invariant monitor treats that as a violation.
        """
        return (
            self.total_injected
            - self.total_detected
            - self.total_harmless
            - self.accepted_undetected
        )

    def as_dict(self) -> dict:
        return {
            "injected": dict(sorted(self.injected.items())),
            "detected": dict(sorted(self.detected.items())),
            "harmless": dict(sorted(self.harmless.items())),
            "accepted": dict(sorted(self.accepted.items())),
            "quarantined": [list(pair) for pair in self.quarantined],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttackReport":
        return cls(
            injected=dict(data.get("injected", {})),
            detected=dict(data.get("detected", {})),
            harmless=dict(data.get("harmless", {})),
            accepted=dict(data.get("accepted", {})),
            quarantined=[list(pair) for pair in data.get("quarantined", [])],
        )

    def merge(self, other: "AttackReport") -> None:
        for mine, theirs in (
            (self.injected, other.injected),
            (self.detected, other.detected),
            (self.harmless, other.harmless),
            (self.accepted, other.accepted),
        ):
            for key, val in theirs.items():
                mine[key] = mine.get(key, 0) + val
        self.quarantined.extend(list(pair) for pair in other.quarantined)


__all__ = [
    "AttackKind",
    "AdversaryInjector",
    "AttackReport",
    "TAMPER_KINDS",
    "ALIEN_KINDS",
]
