"""Replay-attack protection bookkeeping (§II-C).

The sender keeps each outgoing message's counter (or MAC) until the
receiver's ACK echoes it back; a mismatch or an unexpected ACK indicates a
replayed or dropped message.  Links deliver in FIFO order in this model, so
ACKs retire entries oldest-first per directed pair.

The guard is pure bookkeeping — it adds no cycles — but its high-water mark
reports how much sender-side retention storage the protocol needs, and the
batched protocol's single-ACK-per-batch behaviour shows up directly as a
lower entry turnover.

Two ACK channels coexist under metadata batching (§IV-C): conventional
messages (e.g. remote writes) are ACKed individually and carry their
counter, while batched data blocks are ACKed *once per batch*, identified
by batch id.  The two channels complete at different latencies by design —
a batch ACK waits for the batch to close — so their retirements must not
share one blind FIFO.  Entries are therefore *tagged* with their batch id
at :meth:`ReplayGuard.on_send` time, a batch ACK retires exactly its
batch's tagged entries (:meth:`on_ack` with ``batch_id``), and the FIFO
freshness check for a conventional ACK measures queue depth over the
*untagged* entries only: batch-pending entries ahead of a conventional
counter are not "overtaken", they are simply on the slower channel.

A nonzero ``window`` relaxes strict FIFO: a conventional ACK whose counter
sits at untagged depth ``d`` (0 = head of the untagged subsequence) is
accepted without penalty when ``d < window`` — delivery reordering within
the window is legitimate, e.g. under an active adversary holding blocks
back (`AdversaryConfig.reorder_rate`).  The boundary is exact: depth
``window - 1`` is the last accepted position, depth ``window`` already
counts as a violation and triggers the lost-entry resynchronization.
``window=0`` (the default) is strict FIFO — any out-of-head ACK is a
violation — which keeps adversary-free runs bit-identical to the
historical behaviour.
"""

from __future__ import annotations

from collections import deque
from itertools import islice


class ReplayGuard:
    """Sender-side outstanding-message table for one processor."""

    def __init__(self, node: int, window: int = 0) -> None:
        if window < 0:
            raise ValueError("window must be non-negative")
        self.node = node
        self.window = window  # out-of-order ACK tolerance (queue depth)
        self._outstanding: dict[int, deque[int]] = {}  # peer -> counters awaiting ACK
        #: (peer, batch_id) -> counters retained for that batch's single ACK
        self._batch_members: dict[tuple[int, int], list[int]] = {}
        #: peer -> counters currently tagged as batch-pending
        self._tagged: dict[int, set[int]] = {}
        self.max_outstanding = 0
        self.acked = 0
        self.violations = 0
        self.dropped = 0  # entries retired as lost-in-flight, never ACKed
        self.reorder_accepts = 0  # out-of-order ACKs accepted in-window
        self.max_reorder_depth = 0  # deepest accepted out-of-order position

    def _pair(self, peer: int) -> deque:
        return self._outstanding.setdefault(peer, deque())

    def on_send(self, peer: int, counter: int, batch_id: int | None = None) -> None:
        """Retain ``counter`` until the matching ACK returns.

        ``batch_id`` tags the entry as awaiting its *batch's* single ACK
        rather than an individual one; the tag routes the entry to the
        batch-ACK retirement channel.
        """
        self._pair(peer).append(counter)
        if batch_id is not None:
            self._batch_members.setdefault((peer, batch_id), []).append(counter)
            self._tagged.setdefault(peer, set()).add(counter)
        total = sum(len(q) for q in self._outstanding.values())
        self.max_outstanding = max(self.max_outstanding, total)

    def on_ack(
        self,
        peer: int,
        counter: int | None = None,
        retire: int = 1,
        batch_id: int | None = None,
    ) -> bool:
        """Retire entries for ``peer`` on ACK receipt.

        Three retirement channels, in precedence order:

        * ``batch_id`` given — a batched ACK: retire exactly the entries
          tagged with that batch id (see :meth:`on_send`), wherever they
          sit in the queue.  An unknown or already-settled batch id is a
          forged/replayed ACK and leaves the queue untouched.
        * ``counter`` given — a conventional ACK: the FIFO freshness
          check, measured over *untagged* entries only.  Batch-pending
          entries ahead of the counter are on the slower ACK channel and
          do not count as reordering.  A counter at untagged depth
          ``0 < d < window`` is an in-window reordering, retired cleanly.
          A counter at untagged depth ``>= window`` means the untagged
          entries ahead of it were lost in flight: the guard
          resynchronizes by dropping those entries (batch-tagged ones
          stay queued for their own ACKs).  A counter that was never
          sent (forged or replayed) leaves the queue untouched.
        * neither — a blind FIFO retirement of ``retire`` oldest entries
          (legacy single-channel behaviour, kept for window-free
          protocols that never mix ACK channels).
        """
        queue = self._pair(peer)
        if batch_id is not None:
            return self._ack_batch(peer, queue, batch_id)
        if len(queue) < retire:
            self.violations += 1
            return False
        if counter is not None and queue[0] != counter:
            return self._ack_positional(peer, queue, counter)
        for _ in range(retire):
            queue.popleft()
        self.acked += retire
        return True

    def _ack_batch(self, peer: int, queue: deque, batch_id: int) -> bool:
        """Retire exactly the entries retained for one batch."""
        members = self._batch_members.pop((peer, batch_id), None)
        if not members:
            self.violations += 1  # unknown or double-ACKed batch
            return False
        member_set = set(members)
        retained = [c for c in queue if c not in member_set]
        removed = len(queue) - len(retained)
        tagged = self._tagged.get(peer)
        if tagged is not None:
            tagged.difference_update(member_set)
        if removed == 0:
            # Every member already retired (e.g. voided pre-retransmit):
            # the ACK answers wire copies that no longer exist.
            self.violations += 1
            return False
        queue.clear()
        queue.extend(retained)
        self.acked += removed
        return True

    def _ack_positional(self, peer: int, queue: deque, counter: int) -> bool:
        """Conventional-ACK freshness check over the untagged subsequence."""
        try:
            pos = queue.index(counter)
        except ValueError:
            self.violations += 1  # never sent: forged or replayed ACK
            return False
        tagged = self._tagged.get(peer) or frozenset()
        depth = sum(1 for c in islice(queue, pos) if c not in tagged)
        if depth < max(self.window, 1):
            # depth 0: only batch-pending entries ahead — the conventional
            # channel's own FIFO order is intact.  depth < window: a
            # legitimate in-window reordering (window-1 is the last
            # accepted position, depth window already resyncs).
            del queue[pos]
            self.acked += 1
            if depth > 0:
                self.reorder_accepts += 1
                if depth > self.max_reorder_depth:
                    self.max_reorder_depth = depth
            return True
        # Out-of-window: the untagged entries ahead were lost in flight
        # (their ACKs will never come).  Resynchronize by dropping them;
        # batch-tagged entries stay queued for their batch ACKs.
        self.violations += 1
        retained_front: list[int] = []
        while queue:
            head = queue.popleft()
            if head == counter:
                self.acked += 1
                break
            if head in tagged:
                retained_front.append(head)
            else:
                self.dropped += 1
        for c in reversed(retained_front):
            queue.appendleft(c)
        return False

    def retire_lost(self, peer: int, counter: int) -> bool:
        """Void a specific entry known lost on the wire (pre-retransmit).

        The secure channel calls this when it retransmits a block under a
        fresh counter: the old copy's ACK can never arrive, so leaving its
        entry queued would desynchronize the FIFO freshness check.
        """
        queue = self._pair(peer)
        try:
            queue.remove(counter)
        except ValueError:
            return False
        tagged = self._tagged.get(peer)
        if tagged is not None:
            tagged.discard(counter)
        self.dropped += 1
        return True

    def outstanding(self, peer: int | None = None) -> int:
        if peer is None:
            return sum(len(q) for q in self._outstanding.values())
        return len(self._outstanding.get(peer, ()))


__all__ = ["ReplayGuard"]
