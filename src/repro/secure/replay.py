"""Replay-attack protection bookkeeping (§II-C).

The sender keeps each outgoing message's counter (or MAC) until the
receiver's ACK echoes it back; a mismatch or an unexpected ACK indicates a
replayed or dropped message.  Links deliver in FIFO order in this model, so
ACKs retire entries oldest-first per directed pair.

The guard is pure bookkeeping — it adds no cycles — but its high-water mark
reports how much sender-side retention storage the protocol needs, and the
batched protocol's single-ACK-per-batch behaviour shows up directly as a
lower entry turnover.

A nonzero ``window`` relaxes strict FIFO: an ACK whose counter sits at
queue depth ``d`` (0 = head) is accepted without penalty when ``d <
window`` — delivery reordering within the window is legitimate, e.g. under
an active adversary holding blocks back (`AdversaryConfig.reorder_rate`).
The boundary is exact: depth ``window - 1`` is the last accepted position,
depth ``window`` already counts as a violation and triggers the lost-entry
resynchronization.  ``window=0`` (the default) is strict FIFO — any
out-of-head ACK is a violation — which keeps adversary-free runs
bit-identical to the historical behaviour.
"""

from __future__ import annotations

from collections import deque


class ReplayGuard:
    """Sender-side outstanding-message table for one processor."""

    def __init__(self, node: int, window: int = 0) -> None:
        if window < 0:
            raise ValueError("window must be non-negative")
        self.node = node
        self.window = window  # out-of-order ACK tolerance (queue depth)
        self._outstanding: dict[int, deque[int]] = {}  # peer -> counters awaiting ACK
        self.max_outstanding = 0
        self.acked = 0
        self.violations = 0
        self.dropped = 0  # entries retired as lost-in-flight, never ACKed
        self.reorder_accepts = 0  # out-of-order ACKs accepted in-window
        self.max_reorder_depth = 0  # deepest accepted out-of-order position

    def _pair(self, peer: int) -> deque:
        return self._outstanding.setdefault(peer, deque())

    def on_send(self, peer: int, counter: int) -> None:
        """Retain ``counter`` until the matching ACK returns."""
        self._pair(peer).append(counter)
        total = sum(len(q) for q in self._outstanding.values())
        self.max_outstanding = max(self.max_outstanding, total)

    def on_ack(self, peer: int, counter: int | None = None, retire: int = 1) -> bool:
        """Retire ``retire`` oldest entries for ``peer``.

        When ``counter`` is given it must match the oldest entry (the FIFO
        freshness check); a mismatch is recorded as a violation and returns
        False.  Batched ACKs retire a whole batch at once.

        A mismatched ACK whose counter is queued at depth ``d < window``
        is an in-window reordering: the entry is retired cleanly (no
        violation, no drops) and the entries ahead of it stay queued for
        their own — merely overtaken — ACKs.

        A mismatched ACK whose counter is queued *outside* the window
        means the entries ahead of it were lost in flight (their ACKs
        will never come): the guard resynchronizes by retiring through
        the matched entry with dropped-message semantics.  Without that
        resync the stale head would miscount every subsequent ACK for the
        peer as a violation.  A counter that was never sent (a forged or
        replayed ACK) leaves the queue untouched.
        """
        queue = self._pair(peer)
        if len(queue) < retire:
            self.violations += 1
            return False
        if counter is not None and queue[0] != counter:
            try:
                depth = queue.index(counter)
            except ValueError:
                depth = -1  # never sent: forged or replayed ACK
            if 0 < depth < self.window:
                # Legitimate in-window reordering: depth window-1 is the
                # last accepted position, depth window already resyncs.
                del queue[depth]
                self.acked += 1
                self.reorder_accepts += 1
                if depth > self.max_reorder_depth:
                    self.max_reorder_depth = depth
                return True
            self.violations += 1
            if depth >= 0:
                while queue:
                    head = queue.popleft()
                    if head == counter:
                        self.acked += 1
                        break
                    self.dropped += 1
            return False
        for _ in range(retire):
            queue.popleft()
        self.acked += retire
        return True

    def retire_lost(self, peer: int, counter: int) -> bool:
        """Void a specific entry known lost on the wire (pre-retransmit).

        The secure channel calls this when it retransmits a block under a
        fresh counter: the old copy's ACK can never arrive, so leaving its
        entry queued would desynchronize the FIFO freshness check.
        """
        queue = self._pair(peer)
        try:
            queue.remove(counter)
        except ValueError:
            return False
        self.dropped += 1
        return True

    def outstanding(self, peer: int | None = None) -> int:
        if peer is None:
            return sum(len(q) for q in self._outstanding.values())
        return len(self._outstanding.get(peer, ()))


__all__ = ["ReplayGuard"]
