"""Common interface and bookkeeping for OTP buffer-management schemes.

A scheme instance lives on one processor and answers two questions:

* ``acquire_send(peer, now)`` — how long must an outgoing message to
  ``peer`` wait for its encryption/authentication pads, and will the
  receiver's pre-generated pad be *synced* (usable) for this message?
* ``acquire_recv(peer, now, synced)`` — how long does the incoming-side
  pad acquisition take, given the sender-declared sync state?

Every acquisition is recorded into per-direction hit/partial/miss ratio
stats (the Figs 10/22 decomposition).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.configs import SecurityConfig
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadGrant
from repro.sim.stats import RatioStat, StatsRegistry


@dataclass(frozen=True)
class SendGrant:
    """Sender-side pad grant plus the receiver-sync declaration."""

    grant: PadGrant
    receiver_synced: bool


class OtpScheme(ABC):
    """Base class: identity, configuration, and outcome statistics."""

    name = "abstract"

    def __init__(
        self,
        node: int,
        peers: list[int],
        security: SecurityConfig,
        engine: AesGcmEngineModel,
    ) -> None:
        if node in peers:
            raise ValueError("a node cannot be its own peer")
        if not peers:
            raise ValueError("scheme needs at least one peer")
        self.node = node
        self.peers = list(peers)
        self.security = security
        self.engine = engine
        self.stats = StatsRegistry(f"{self.name}@node{node}")
        self._send_outcomes: RatioStat = self.stats.ratio("send_otp")
        self._recv_outcomes: RatioStat = self.stats.ratio("recv_otp")

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abstractmethod
    def acquire_send(self, peer: int, now: int, demand: bool = True) -> SendGrant:
        """Acquire the send-direction pads for a message to ``peer``.

        ``demand`` distinguishes latency-critical demand messages from bulk
        background transfers (page-migration blocks); adaptive schemes may
        weight their monitoring by it, but every message consumes a pad.
        """

    @abstractmethod
    def acquire_recv(
        self, peer: int, now: int, synced: bool = True, demand: bool = True
    ) -> PadGrant:
        """Acquire the receive-direction pads for a message from ``peer``."""

    @abstractmethod
    def pool_size(self) -> int:
        """Total OTP buffer entries this scheme holds on this processor."""

    def note_send(self, peer: int, now: int, demand: bool = True) -> None:
        """Observe a message entering the send path at its *enqueue* time.

        Monitoring must sample offered load, not served load: counting at
        pad consumption lets a starved stream mask its own demand.  The
        base implementation ignores the observation; adaptive schemes use
        it to drive their monitoring phase.
        """

    def note_recv(self, peer: int, now: int, demand: bool = True) -> None:
        """Observe a message entering the receive path (see note_send)."""

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _record_send(self, grant: PadGrant) -> None:
        self._send_outcomes.record(grant.outcome.value)
        self.engine.count_pad()

    def _record_recv(self, grant: PadGrant) -> None:
        self._recv_outcomes.record(grant.outcome.value)
        self.engine.count_pad()

    @property
    def send_outcomes(self) -> RatioStat:
        return self._send_outcomes

    @property
    def recv_outcomes(self) -> RatioStat:
        return self._recv_outcomes

    def _check_peer(self, peer: int) -> None:
        if peer == self.node:
            raise ValueError(f"node {self.node} cannot message itself")


__all__ = ["OtpScheme", "SendGrant"]
