"""The *Cached* scheme (Fig. 7c).

A pool of pad entries equal in size to Private's total is managed like a
cache over (direction, peer) stream keys with LRU replacement.  A stream
that keeps communicating accumulates entries (each miss steals one from the
least-recently-used stream), so — unlike Private's rigid even split — hot
pairs can hold more than ``multiplier`` pads.  The price: a pair evicted
from the table behaves like Shared on its next message (full-latency desync
miss, per §II-C: "otherwise, it adopts Shared using the maximum MsgCTR").
"""

from __future__ import annotations

from repro.configs import SecurityConfig
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadGrant, PadOutcome, PadStream
from repro.secure.schemes.base import OtpScheme, SendGrant

_SEND, _RECV = 0, 1


class CachedScheme(OtpScheme):
    name = "cached"

    def __init__(
        self,
        node: int,
        peers: list[int],
        security: SecurityConfig,
        engine: AesGcmEngineModel,
    ) -> None:
        super().__init__(node, peers, security, engine)
        self.total_entries = security.total_otp_entries(len(peers))
        # The pad table is cache-like (set-associative over pair keys), so
        # one pair's residency is bounded by the way count — modeled as
        # twice Private's per-stream share.
        self.max_per_stream = 2 * security.otp_multiplier
        latency = engine.pad_latency
        # Start like Private: entries spread evenly over all stream keys.
        per_stream, leftover = divmod(self.total_entries, 2 * len(peers))
        self._streams: dict[tuple[int, int], PadStream] = {}
        for direction in (_SEND, _RECV):
            for peer in peers:
                extra = 1 if leftover > 0 else 0
                leftover -= extra
                self._streams[(direction, peer)] = PadStream(latency, per_stream + extra)
        self.evictions = 0
        self.table_misses = 0

    # ------------------------------------------------------------------
    # LRU stealing
    # ------------------------------------------------------------------
    def _steal_entry(self, needy: tuple[int, int], now: int) -> bool:
        """Move one entry from the LRU non-empty stream to ``needy``."""
        if self._streams[needy].capacity >= self.max_per_stream:
            return False
        victim_key = None
        victim_last = None
        for key, stream in self._streams.items():
            if key == needy or stream.capacity == 0:
                continue
            if victim_last is None or stream.last_use < victim_last:
                victim_key, victim_last = key, stream.last_use
        if victim_key is None:
            return False
        self._streams[victim_key].shrink(1)
        self._streams[needy].grow(now, 1)
        self.evictions += 1
        return True

    def _acquire(self, key: tuple[int, int], now: int, synced: bool) -> PadGrant:
        stream = self._streams[key]
        if stream.capacity == 0:
            # Not resident: behave like Shared (full-latency generation)
            # and bring the stream into the table by stealing an entry.
            self.table_misses += 1
            self._steal_entry(key, now)
            stream.last_use = now
            stream.consumed += 1
            return PadGrant(wait=self.engine.pad_latency, outcome=PadOutcome.MISS)
        if not synced:
            return stream.consume_desync(now)
        grant = stream.consume(now)
        if grant.wait * 2 >= self.engine.pad_latency:
            # Under pressure the hot stream grows its residency, which is
            # how Cached concentrates entries on active pairs.  Shallow
            # partials do not steal: the refill pipeline is merely behind.
            self._steal_entry(key, now)
        return grant

    # ------------------------------------------------------------------
    # Scheme interface
    # ------------------------------------------------------------------
    def acquire_send(self, peer: int, now: int, demand: bool = True) -> SendGrant:
        self._check_peer(peer)
        # A send-side table miss falls back to Shared semantics with the
        # maximum MsgCTR (§II-C) — a counter the receiver cannot have
        # pre-generated, so the receiver desynchronizes too.
        table_miss = self._streams[(_SEND, peer)].capacity == 0
        grant = self._acquire((_SEND, peer), now, synced=True)
        self._record_send(grant)
        return SendGrant(grant=grant, receiver_synced=not table_miss)

    def acquire_recv(
        self, peer: int, now: int, synced: bool = True, demand: bool = True
    ) -> PadGrant:
        self._check_peer(peer)
        grant = self._acquire((_RECV, peer), now, synced)
        self._record_recv(grant)
        return grant

    def pool_size(self) -> int:
        return sum(s.capacity for s in self._streams.values())

    def stream_capacity(self, direction: str, peer: int) -> int:
        key = (_SEND if direction == "send" else _RECV, peer)
        return self._streams[key].capacity


__all__ = ["CachedScheme"]
