"""The *Ideal* scheme: an unbounded pad table (analysis upper bound).

Not part of the paper's design space — every acquisition hits, as if each
stream had infinite pre-generated pads with perfectly synced counters.
Useful for ablations: the residual overhead under Ideal is exactly the
metadata-bandwidth + fast-path-latency cost that no OTP buffer-management
scheme can remove (only batching can), cleanly separating the two problems
the paper attacks.
"""

from __future__ import annotations

from repro.configs import SecurityConfig
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadGrant, PadOutcome
from repro.secure.schemes.base import OtpScheme, SendGrant

_ALWAYS_HIT = PadGrant(wait=0, outcome=PadOutcome.HIT)


class IdealScheme(OtpScheme):
    name = "ideal"

    def __init__(
        self,
        node: int,
        peers: list[int],
        security: SecurityConfig,
        engine: AesGcmEngineModel,
    ) -> None:
        super().__init__(node, peers, security, engine)

    def acquire_send(self, peer: int, now: int, demand: bool = True) -> SendGrant:
        self._check_peer(peer)
        self._record_send(_ALWAYS_HIT)
        return SendGrant(grant=_ALWAYS_HIT, receiver_synced=True)

    def acquire_recv(
        self, peer: int, now: int, synced: bool = True, demand: bool = True
    ) -> PadGrant:
        self._check_peer(peer)
        # even a desync cannot miss with unbounded lookahead
        self._record_recv(_ALWAYS_HIT)
        return _ALWAYS_HIT

    def pool_size(self) -> int:
        return 0  # unbounded: no finite provisioning to report


__all__ = ["IdealScheme"]
