"""The *Dynamic* scheme — the paper's contribution (§IV-B).

Structurally Private (per-(direction, peer) streams, synced counters), but
the per-stream capacities are repartitioned every interval ``T`` by the
EWMA-based :class:`~repro.core.dynamic_allocator.DynamicOtpAllocator`.
Directions and peers that carry more traffic receive more pad entries out
of the same fixed pool, so the storage cost stays at Private's while the
hit rate approaches that of a much larger table.

The adjustment is applied lazily: the first pad acquisition past an
interval boundary triggers the monitoring rollover and capacity changes —
equivalent to a hardware timer firing at the boundary, without keeping the
event queue alive when the workload has drained.
"""

from __future__ import annotations

from repro.configs import SecurityConfig
from repro.core.dynamic_allocator import AllocationPlan, DynamicOtpAllocator
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadGrant, PadStream
from repro.secure.schemes.base import OtpScheme, SendGrant


class DynamicScheme(OtpScheme):
    name = "dynamic"

    def __init__(
        self,
        node: int,
        peers: list[int],
        security: SecurityConfig,
        engine: AesGcmEngineModel,
    ) -> None:
        super().__init__(node, peers, security, engine)
        self.allocator = DynamicOtpAllocator(
            peers=peers,
            total_pool=security.total_otp_entries(len(peers)),
            alpha=security.alpha,
            beta=security.beta,
            interval=security.interval,
        )
        latency = engine.pad_latency
        plan = self.allocator.even_plan()
        self._send_streams = {
            p: PadStream(latency, plan.send_per_peer[p]) for p in peers
        }
        self._recv_streams = {
            p: PadStream(latency, plan.recv_per_peer[p]) for p in peers
        }
        self.plans_applied = 0

    # ------------------------------------------------------------------
    # Interval machinery
    # ------------------------------------------------------------------
    def _tick(self, now: int) -> None:
        plan = self.allocator.maybe_adjust(now)
        if plan is not None:
            self._apply(plan, now)

    def _apply(self, plan: AllocationPlan, now: int) -> None:
        # Hysteresis: repartitioning discards warmed pads, so +-1 jitter
        # around the current assignment is not worth acting on.  Only plans
        # that move at least one stream by two or more entries are applied.
        significant = any(
            abs(plan.send_per_peer[p] - self._send_streams[p].capacity) >= 2
            or abs(plan.recv_per_peer[p] - self._recv_streams[p].capacity) >= 2
            for p in plan.send_per_peer
        )
        if not significant:
            return
        for peer, capacity in plan.send_per_peer.items():
            self._send_streams[peer].set_capacity(now, capacity)
        for peer, capacity in plan.recv_per_peer.items():
            self._recv_streams[peer].set_capacity(now, capacity)
        self.plans_applied += 1

    # ------------------------------------------------------------------
    # Scheme interface
    # ------------------------------------------------------------------
    def note_send(self, peer: int, now: int, demand: bool = True) -> None:
        """Monitoring phase: sample offered send load at enqueue time."""
        self._check_peer(peer)
        self._tick(now)
        if demand:
            # bulk migration blocks consume pads but do not steer the
            # allocation: they are latency-tolerant background traffic
            self.allocator.record_send(peer)

    def note_recv(self, peer: int, now: int, demand: bool = True) -> None:
        self._check_peer(peer)
        self._tick(now)
        if demand:
            self.allocator.record_recv(peer)

    def acquire_send(self, peer: int, now: int, demand: bool = True) -> SendGrant:
        self._check_peer(peer)
        self._tick(now)
        grant = self._send_streams[peer].consume(now)
        self._record_send(grant)
        return SendGrant(grant=grant, receiver_synced=True)

    def acquire_recv(
        self, peer: int, now: int, synced: bool = True, demand: bool = True
    ) -> PadGrant:
        self._check_peer(peer)
        self._tick(now)
        stream = self._recv_streams[peer]
        grant = stream.consume(now) if synced else stream.consume_desync(now)
        self._record_recv(grant)
        return grant

    def pool_size(self) -> int:
        return sum(s.capacity for s in self._send_streams.values()) + sum(
            s.capacity for s in self._recv_streams.values()
        )

    def stream_capacity(self, direction: str, peer: int) -> int:
        streams = self._send_streams if direction == "send" else self._recv_streams
        return streams[peer].capacity


__all__ = ["DynamicScheme"]
