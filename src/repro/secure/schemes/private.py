"""The *Private* scheme (Fig. 7a).

Every (direction, peer) stream owns ``otp_multiplier`` dedicated pad
entries ("OTP Nx"), and per-pair message counters stay perfectly
synchronized, so the receiver's pre-generation is always for the right
counter — misses come only from bursts outrunning the per-stream capacity.
Storage grows quadratically with the processor count (Table I), which is
exactly the problem the Dynamic scheme addresses with the same pool size.
"""

from __future__ import annotations

from repro.configs import SecurityConfig
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadGrant, PadStream
from repro.secure.schemes.base import OtpScheme, SendGrant


class PrivateScheme(OtpScheme):
    name = "private"

    def __init__(
        self,
        node: int,
        peers: list[int],
        security: SecurityConfig,
        engine: AesGcmEngineModel,
    ) -> None:
        super().__init__(node, peers, security, engine)
        k = security.otp_multiplier
        latency = engine.pad_latency
        self._send_streams = {p: PadStream(latency, k) for p in peers}
        self._recv_streams = {p: PadStream(latency, k) for p in peers}

    def acquire_send(self, peer: int, now: int, demand: bool = True) -> SendGrant:
        self._check_peer(peer)
        grant = self._send_streams[peer].consume(now)
        self._record_send(grant)
        return SendGrant(grant=grant, receiver_synced=True)

    def acquire_recv(
        self, peer: int, now: int, synced: bool = True, demand: bool = True
    ) -> PadGrant:
        self._check_peer(peer)
        stream = self._recv_streams[peer]
        grant = stream.consume(now) if synced else stream.consume_desync(now)
        self._record_recv(grant)
        return grant

    def pool_size(self) -> int:
        return sum(s.capacity for s in self._send_streams.values()) + sum(
            s.capacity for s in self._recv_streams.values()
        )


__all__ = ["PrivateScheme"]
