"""OTP buffer-management schemes.

Four managed schemes from the paper plus the unsecured baseline:

* ``private`` — per-(direction, peer) pad tables, perfectly synced counters
* ``shared``  — one shared send counter; receivers predict only back-to-back
* ``cached``  — LRU pool of pad entries over stream keys
* ``dynamic`` — the paper's contribution: EWMA-repartitioned Private
"""

from repro.secure.schemes.base import OtpScheme, SendGrant
from repro.secure.schemes.private import PrivateScheme
from repro.secure.schemes.shared import SharedScheme
from repro.secure.schemes.cached import CachedScheme
from repro.secure.schemes.dynamic import DynamicScheme
from repro.secure.schemes.ideal import IdealScheme


def build_scheme(name, node, peers, security, engine):
    """Instantiate the named scheme for one processor.

    ``unsecure`` returns None: the transport skips all security processing.
    """
    builders = {
        "private": PrivateScheme,
        "shared": SharedScheme,
        "cached": CachedScheme,
        "dynamic": DynamicScheme,
        "ideal": IdealScheme,
    }
    if name == "unsecure":
        return None
    try:
        cls = builders[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(builders)} or 'unsecure'"
        ) from None
    return cls(node, peers, security, engine)


__all__ = [
    "OtpScheme",
    "SendGrant",
    "PrivateScheme",
    "SharedScheme",
    "CachedScheme",
    "DynamicScheme",
    "IdealScheme",
    "build_scheme",
]
