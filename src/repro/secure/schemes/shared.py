"""The *Shared* scheme (Fig. 7b).

One message counter — and one pad buffer — serves the send direction to
*all* peers: seeds omit the receiver ID, so a single pre-generated pad works
for whichever destination comes next.  The capacity saving is large (1 send
entry instead of peers × multiplier) but pre-generation barely helps:

* the lone send entry is immediately exhausted by any burst, and
* a receiver can only pre-generate the sender's next pad if it knows the
  next message is for *it* — true only for back-to-back messages to the
  same destination; any destination switch desynchronizes every other
  receiver's pre-generation (a full-latency desync miss).
"""

from __future__ import annotations

from repro.configs import SecurityConfig
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadGrant, PadStream
from repro.secure.schemes.base import OtpScheme, SendGrant


class SharedScheme(OtpScheme):
    name = "shared"

    def __init__(
        self,
        node: int,
        peers: list[int],
        security: SecurityConfig,
        engine: AesGcmEngineModel,
    ) -> None:
        super().__init__(node, peers, security, engine)
        latency = engine.pad_latency
        self._send_stream = PadStream(latency, capacity=1)
        self._recv_streams = {p: PadStream(latency, capacity=1) for p in peers}
        self._last_dst: int | None = None
        self.destination_switches = 0

    def acquire_send(self, peer: int, now: int, demand: bool = True) -> SendGrant:
        self._check_peer(peer)
        grant = self._send_stream.consume(now)
        self._record_send(grant)
        # The receiver's pre-generated pad is only for the shared counter's
        # next value if the previous send also went to this peer.
        synced = self._last_dst == peer
        if not synced:
            self.destination_switches += 1
        self._last_dst = peer
        return SendGrant(grant=grant, receiver_synced=synced)

    def acquire_recv(
        self, peer: int, now: int, synced: bool = True, demand: bool = True
    ) -> PadGrant:
        self._check_peer(peer)
        stream = self._recv_streams[peer]
        grant = stream.consume(now) if synced else stream.consume_desync(now)
        self._record_recv(grant)
        return grant

    def pool_size(self) -> int:
        return self._send_stream.capacity + sum(
            s.capacity for s in self._recv_streams.values()
        )


__all__ = ["SharedScheme"]
