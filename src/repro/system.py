"""Whole-system assembly and simulation entry point.

:class:`MultiGpuSystem` wires the substrates together — topology, transport
(secure or not), page table + migration policy, host CPU, and one
:class:`~repro.gpu.gpu.GpuDevice` per GPU — loads a workload trace, runs
the event loop, and distills a :class:`SimulationReport` carrying every
quantity the paper's figures plot.

Typical use::

    from repro import MultiGpuSystem, scheme_config, get_workload

    trace = get_workload("matrixmultiplication").generate(n_gpus=4, seed=1)
    report = MultiGpuSystem(scheme_config("batching")).run(trace)
    print(report.execution_cycles, report.traffic_bytes)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import SystemConfig
from repro.gpu.cpu import HostCpu
from repro.gpu.gpu import GpuDevice
from repro.interconnect.topology import CPU_NODE, Topology
from repro.memory.migration import AccessCounterMigrationPolicy, MigrationCost
from repro.obs import Telemetry
from repro.memory.page_table import PageTable
from repro.secure.adversary import AttackReport
from repro.secure.channel import SecureTransport, build_transport
from repro.sim.engine import Simulator
from repro.sim.stats import FaultStats
from repro.workloads.base import WorkloadTrace
from repro.workloads.compiled import CompiledTrace, ensure_compiled


@dataclass
class OtpDistribution:
    """Hit/partial/miss fractions for one direction (Figs 10/22)."""

    hit: float = 0.0
    partial: float = 0.0
    miss: float = 0.0

    @property
    def hidden(self) -> float:
        """Fully or partially hidden fraction, as the paper reports."""
        return self.hit + self.partial


@dataclass
class SimulationReport:
    """Everything measured in one run."""

    workload: str
    scheme: str
    n_gpus: int
    execution_cycles: int
    traffic_bytes: int
    base_traffic_bytes: int
    meta_traffic_bytes: int
    remote_requests: int
    migrations: int
    otp_send: OtpDistribution = field(default_factory=OtpDistribution)
    otp_recv: OtpDistribution = field(default_factory=OtpDistribution)
    rpki: float = 0.0
    acks_sent: int = 0
    batch_macs_sent: int = 0
    per_gpu_finish: dict[int, int] = field(default_factory=dict)
    burst16_fractions: list[float] = field(default_factory=list)
    burst32_fractions: list[float] = field(default_factory=list)
    timelines: dict = field(default_factory=dict)
    events_processed: int = 0
    #: populated only when link-fault injection is enabled
    fault_stats: FaultStats | None = None
    #: populated only when an active adversary is configured
    attack_report: AttackReport | None = None
    #: uniform-namespace telemetry snapshot (see ``docs/OBSERVABILITY.md``):
    #: a JSON-safe dict of ``{"otp.send": {...}, "meta.bytes": {...}, ...}``
    #: harvested from the run's :class:`~repro.obs.Telemetry` at report time
    metrics: dict = field(default_factory=dict)

    def slowdown_vs(self, baseline: "SimulationReport") -> float:
        """Normalized execution time (1.0 = the baseline's)."""
        if baseline.execution_cycles <= 0:
            raise ValueError("baseline has no execution time")
        return self.execution_cycles / baseline.execution_cycles

    def traffic_ratio_vs(self, baseline: "SimulationReport") -> float:
        if baseline.traffic_bytes <= 0:
            raise ValueError("baseline has no traffic")
        return self.traffic_bytes / baseline.traffic_bytes


class MultiGpuSystem:
    """Builds and runs one simulated machine for one workload."""

    def __init__(self, config: SystemConfig, telemetry: Telemetry | None = None) -> None:
        self.config = config
        #: run-scoped observability context; callers that pre-time phases
        #: (e.g. trace generation in ``execute_job``) pass their own so one
        #: object carries the whole cell's metrics and profile
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.sim = Simulator()
        self.topology = Topology(
            n_gpus=config.n_gpus,
            pcie_bytes_per_cycle=config.link.pcie_bytes_per_cycle,
            nvlink_bytes_per_cycle=config.link.nvlink_bytes_per_cycle,
            pcie_latency=config.link.pcie_latency,
            nvlink_latency=config.link.nvlink_latency,
            fabric=config.link.fabric,
            switch_factor=config.link.switch_factor,
        )
        self.transport = build_transport(self.sim, self.topology, config, self.telemetry)
        self.cpu: HostCpu | None = None
        self.gpus: dict[int, GpuDevice] = {}
        self.page_table: PageTable | None = None
        self._ran = False

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _build_devices(self, trace: CompiledTrace) -> None:
        cfg = self.config
        self.page_table = PageTable(trace.initial_owners)
        policy = AccessCounterMigrationPolicy(
            self.page_table,
            threshold=cfg.migration.threshold,
            cost=MigrationCost(cfg.migration.driver_cycles, cfg.migration.shootdown_cycles),
        )
        for page in trace.pinned_pages:
            policy.pin(page)

        self.cpu = HostCpu(
            self.sim, self.transport, node_id=CPU_NODE, dram_latency=cfg.cpu_dram_latency
        )
        for node in self.topology.gpu_nodes():
            self.gpus[node] = GpuDevice(
                node_id=node,
                sim=self.sim,
                cfg=cfg.gpu,
                transport=self.transport,
                page_table=self.page_table,
                migration_policy=policy,
                migration_cfg=cfg.migration,
                on_migration_commit=self._on_migration_commit,
            )
        for node, gpu_trace in trace.gpu_traces.items():
            if node not in self.gpus:
                raise ValueError(f"trace targets GPU node {node} outside the system")
            self.gpus[node].load_trace(gpu_trace)

    def _on_migration_commit(self, page: int, old_owner: int, new_owner: int) -> None:
        """Driver-side shootdown: every node drops its stale page state."""
        for gpu in self.gpus.values():
            if gpu.node_id != new_owner:
                gpu.invalidate_page(page)
        if self.cpu is not None:
            self.cpu.invalidate_page(page)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, trace: WorkloadTrace | CompiledTrace) -> SimulationReport:
        if self._ran:
            raise RuntimeError("a MultiGpuSystem instance runs exactly one workload")
        self._ran = True
        with self.telemetry.phase("system.build"):
            # Authoring-form traces are compiled here once; sweeps hand in an
            # already-compiled (and possibly store-shared) trace directly.
            trace = ensure_compiled(trace)
            trace.validate()
            self._build_devices(trace)
            for gpu in self.gpus.values():
                gpu.start()
        with self.telemetry.phase("system.simulate"):
            self.sim.run()
        with self.telemetry.phase("system.report"):
            return self._report(trace)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, trace: CompiledTrace) -> SimulationReport:
        finishes = {
            node: gpu.finish_cycle
            for node, gpu in self.gpus.items()
            if gpu.finish_cycle is not None
        }
        unfinished = [n for n, g in self.gpus.items() if g.lanes and g.finish_cycle is None]
        if unfinished:
            raise RuntimeError(f"GPUs {unfinished} never drained — deadlocked workload?")
        execution = max(finishes.values()) if finishes else self.sim.now

        scheme_name = self.config.security.scheme
        if self.config.security.batching:
            scheme_name = "batching"
        report = SimulationReport(
            workload=trace.name,
            scheme=scheme_name,
            n_gpus=self.config.n_gpus,
            execution_cycles=execution,
            traffic_bytes=self.topology.total_bytes,
            base_traffic_bytes=self.topology.base_bytes,
            meta_traffic_bytes=self.topology.meta_bytes,
            remote_requests=sum(g.remote_requests for g in self.gpus.values()),
            migrations=self.page_table.migrations if self.page_table else 0,
            per_gpu_finish=finishes,
            events_processed=self.sim.events_processed,
        )

        instructions = sum(g.instructions for g in self.gpus.values())
        if instructions:
            report.rpki = report.remote_requests / (instructions / 1000.0)

        report.burst16_fractions = self.transport.burst16.fractions()
        report.burst32_fractions = self.transport.burst32.fractions()
        report.timelines = self.transport.timelines

        if isinstance(self.transport, SecureTransport):
            summary = self.transport.otp_summary()
            report.otp_send = OtpDistribution(**summary["send"])
            report.otp_recv = OtpDistribution(**summary["recv"])
            report.acks_sent = self.transport.acks_sent
            report.batch_macs_sent = self.transport.batch_macs_sent
        if self.transport.fault_stats is not None:
            report.fault_stats = self.transport.fault_stats
        if self.transport.attack_report is not None:
            report.attack_report = self.transport.attack_report
        self._harvest_metrics(report)
        if isinstance(self.transport, SecureTransport):
            # Sanitizer pass: a violated security invariant fails the run
            # loudly rather than shipping a report built on broken crypto
            # bookkeeping (no-op unless an adversary was configured).
            self.transport.run_invariant_checks()
        return report

    def _harvest_metrics(self, report: SimulationReport) -> None:
        """Fold the run's measurements into the uniform metric namespace.

        Every scheme — unsecure included — emits the same core
        (``run.* traffic.* meta.* msg.* engine.* burst.*``); secure schemes
        add ``otp.*``/``ack.*``/``batch.*``, the dynamic allocator adds
        ``alloc.*``, and live ``fault.*`` counters were already recorded by
        the transport during the run.  The resulting snapshot is a pure
        function of the job description, so it survives the result cache
        and the process-pool boundary bit-identically.
        """
        m = self.telemetry.metrics
        m.counter("run.cycles").add(report.execution_cycles)
        m.counter("run.remote_requests").add(report.remote_requests)
        m.counter("run.migrations").add(report.migrations)
        m.gauge("run.rpki").set(report.rpki)
        m.counter("traffic.bytes").add(report.traffic_bytes)
        m.counter("traffic.base_bytes").add(report.base_traffic_bytes)
        m.counter("meta.bytes").add(report.meta_traffic_bytes)
        m.counter("msg.sent").add(self.transport.messages_sent)
        m.counter("msg.data_blocks").add(self.transport.data_blocks)
        m.counter("engine.events").add(report.events_processed)
        m.counter("engine.pushes").add(self.sim.queue.pushes)
        m.counter("engine.cancelled").add(self.sim.queue.cancelled_dropped)
        m.register("burst.accum16", self.transport.burst16)
        m.register("burst.accum32", self.transport.burst32)
        if isinstance(self.transport, SecureTransport):
            send, recv = m.ratio("otp.send"), m.ratio("otp.recv")
            for scheme in self.transport.schemes.values():
                send.merge(scheme.send_outcomes)
                recv.merge(scheme.recv_outcomes)
            m.counter("ack.sent").add(self.transport.acks_sent)
            m.counter("batch.macs_sent").add(self.transport.batch_macs_sent)
            # Conformance-oracle feed (docs/VERIFICATION.md): the message
            # split the metadata byte law is written in, the batch life
            # cycle counters its batched form sums over, the end-of-run
            # pool gauge the conservation law checks, and the replay-guard
            # ledger the ACK-accounting law audits.
            m.counter("meta.conventional_msgs").add(self.transport.conventional_msgs)
            m.counter("meta.batched_blocks").add(self.transport.batched_blocks)
            batchers = self.transport.batchers.values()
            m.counter("batch.opened").add(sum(b.batches_opened for b in batchers))
            m.counter("batch.closed_full").add(sum(b.batches_closed_full for b in batchers))
            m.counter("batch.closed_timeout").add(
                sum(b.batches_closed_timeout for b in batchers)
            )
            m.counter("batch.stale_timeouts").add(sum(b.stale_timeouts for b in batchers))
            m.gauge("otp.pool_entries").set(
                sum(s.pool_size() for s in self.transport.schemes.values())
            )
            guards = self.transport.guards.values()
            m.counter("ack.guard_acked").add(sum(g.acked for g in guards))
            m.counter("ack.guard_violations").add(sum(g.violations for g in guards))
            m.counter("ack.guard_dropped").add(sum(g.dropped for g in guards))
            m.gauge("ack.guard_outstanding").set(sum(g.outstanding() for g in guards))
            allocators = [
                s.allocator
                for s in self.transport.schemes.values()
                if hasattr(s, "allocator")
            ]
            if allocators:
                m.counter("alloc.adjustments").add(sum(a.adjustments for a in allocators))
                m.counter("alloc.idle_intervals").add(
                    sum(a.idle_intervals for a in allocators)
                )
                m.counter("alloc.plans_applied").add(
                    sum(
                        s.plans_applied
                        for s in self.transport.schemes.values()
                        if hasattr(s, "plans_applied")
                    )
                )
        if report.attack_report is not None:
            # Rollup of the per-attack ledger next to the live adv.* event
            # counters the transport recorded during the run.
            ar = report.attack_report
            m.counter("adv.injected").add(ar.total_injected)
            m.counter("adv.detected").add(ar.total_detected)
            m.counter("adv.harmless").add(ar.total_harmless)
            m.counter("adv.accepted_undetected").add(ar.accepted_undetected)
            m.counter("adv.quarantined_links").add(len(ar.quarantined))
            monitor = getattr(self.transport, "monitor", None)
            if monitor is not None:
                m.counter("adv.invariant_violations").add(len(monitor.violations))
        report.metrics = self.telemetry.snapshot()


def run_workload(
    config: SystemConfig,
    trace: WorkloadTrace | CompiledTrace,
    telemetry: Telemetry | None = None,
) -> SimulationReport:
    """One-shot convenience wrapper."""
    return MultiGpuSystem(config, telemetry=telemetry).run(trace)


__all__ = ["MultiGpuSystem", "SimulationReport", "OtpDistribution", "run_workload"]
