"""Heap-based discrete-event simulation engine.

The simulator advances a cycle-granularity clock (1 cycle = 1 ns at the
paper's 1 GHz shader clock) by popping the earliest pending event and
invoking its callback.  Components never busy-wait: everything that takes
time — link serialization, AES-GCM pad generation, HBM access — is expressed
as an event scheduled at an absolute cycle.

Events scheduled for the same cycle run in FIFO order of scheduling, which
keeps runs fully deterministic for a fixed workload seed.

The heap stores plain ``(time, seq, event)`` tuples rather than rich
comparable objects: ``seq`` is unique, so every comparison resolves on the
first one or two integer elements at C speed and the :class:`Event` handle
itself is never compared.  The handle is a ``__slots__`` class that exists
only to support cancellation and introspection.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the engine detects an inconsistent schedule."""


class Event:
    """Handle for a single scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped
    (lazy deletion), which is cheaper than heap surgery.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time}, seq={self.seq}{state})"


class EventQueue:
    """Priority queue of :class:`Event` with lazy cancellation.

    ``pop`` and ``peek_time`` both compact the heap top eagerly: consecutive
    cancelled entries are dropped as soon as they surface, so a heap
    dominated by cancelled events (a common pattern for wakeup timers that
    are almost always rescheduled) never pays for them more than once.
    """

    __slots__ = ("_heap", "_seq", "cancelled_dropped")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        #: cancelled entries lazily discarded so far (pop, peek, run loop) —
        #: with ``pushes`` and the simulator's ``events_processed`` this is
        #: the engine's push/pop/cancel profile the telemetry layer exports.
        self.cancelled_dropped = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pushes(self) -> int:
        """Total events ever scheduled on this queue."""
        return self._seq

    def live_events(self) -> int:
        """Number of non-cancelled entries (O(n); for tests/diagnostics)."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback)
        heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or None if empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if not event.cancelled:
                # Eager compaction: drain cancelled entries now at the top
                # so the next pop/peek starts from a live event.
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                    self.cancelled_dropped += 1
                return event
            self.cancelled_dropped += 1
        return None

    def peek_time(self) -> int | None:
        """Return the timestamp of the earliest live event without popping."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
            self.cancelled_dropped += 1
        if heap:
            return heap[0][0]
        return None


class Simulator:
    """The simulation kernel: a clock plus an event queue.

    Components hold a reference to the simulator and call :meth:`schedule`
    (relative delay) or :meth:`schedule_at` (absolute cycle).  ``run`` drains
    the queue until it is empty or a cycle/event limit is hit.
    """

    def __init__(self, max_cycles: int | None = None, max_events: int | None = None) -> None:
        self.now: int = 0
        self.queue = EventQueue()
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.events_processed: int = 0
        self._running = False
        self._end_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} scheduled at cycle {self.now}")
        return self.queue.push(self.now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"event scheduled in the past: {time} < now {self.now}")
        return self.queue.push(int(time), callback)

    def add_end_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook invoked once when the run finishes."""
        self._end_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Drain the event queue.  Returns the final simulation cycle.

        The loop works on the heap directly with everything hoisted into
        locals — this is the hottest code in the repository (every simulated
        cycle of every sweep goes through it), and attribute lookups per
        event are measurable at that volume.
        """
        heap = self.queue._heap
        pop = heappop
        max_cycles = self.max_cycles
        max_events = self.max_events
        processed = self.events_processed
        cancelled = 0
        self._running = True
        try:
            while heap:
                if max_events is not None and processed >= max_events:
                    break
                time, _seq, event = pop(heap)
                if event.cancelled:
                    cancelled += 1
                    continue
                if max_cycles is not None and time > max_cycles:
                    break
                if time < self.now:
                    raise SimulationError(
                        f"time went backwards: event at {time}, now {self.now}"
                    )
                self.now = time
                processed += 1
                event.callback()
        finally:
            self.events_processed = processed
            self.queue.cancelled_dropped += cancelled
            self._running = False
        for hook in self._end_hooks:
            hook()
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        event.callback()
        return True


__all__ = ["Event", "EventQueue", "Simulator", "SimulationError"]
