"""Heap-based discrete-event simulation engine.

The simulator advances a cycle-granularity clock (1 cycle = 1 ns at the
paper's 1 GHz shader clock) by popping the earliest pending event and
invoking its callback.  Components never busy-wait: everything that takes
time — link serialization, AES-GCM pad generation, HBM access — is expressed
as an event scheduled at an absolute cycle.

Events scheduled for the same cycle run in FIFO order of scheduling, which
keeps runs fully deterministic for a fixed workload seed.

The heap stores plain ``(time, seq, item)`` tuples; ``seq`` is unique, so
every comparison resolves on the first one or two integer elements at C
speed.  ``item`` comes in two flavors, reflecting the two kinds of
scheduling the components actually do:

* a bare **callable** — the common case (``post``/``post_at``): a one-shot
  callback that nothing will ever cancel.  No handle object is allocated
  at all; the callable itself sits in the heap entry.
* an :class:`Event` handle — the cancellable case (``schedule``/
  ``schedule_at``): a ``__slots__`` object that exists only to support
  cancellation and introspection (the GPU wakeup-timer pattern).

Both flavors share one ``seq`` counter, so FIFO-per-cycle ordering holds
across them.  The no-handle path skips an object allocation plus three
attribute stores per event — at hundreds of thousands of events per cell,
that is the difference measured by ``benchmarks/bench_sweep_runtime.py``.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Callable


class SimulationError(RuntimeError):
    """Raised when the engine detects an inconsistent schedule."""


class Event:
    """Handle for a single *cancellable* scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped
    (lazy deletion), which is cheaper than heap surgery.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time}, seq={self.seq}{state})"


class EventQueue:
    """Priority queue of scheduled callbacks with lazy cancellation.

    ``pop`` and ``peek_time`` both compact the heap top eagerly: consecutive
    cancelled entries are dropped as soon as they surface, so a heap
    dominated by cancelled events (a common pattern for wakeup timers that
    are almost always rescheduled) never pays for them more than once.
    """

    __slots__ = ("_heap", "_seq", "cancelled_dropped")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        #: cancelled entries lazily discarded so far (pop, peek, run loop) —
        #: with ``pushes`` and the simulator's ``events_processed`` this is
        #: the engine's push/pop/cancel profile the telemetry layer exports.
        self.cancelled_dropped = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pushes(self) -> int:
        """Total events ever scheduled on this queue."""
        return self._seq

    def live_events(self) -> int:
        """Number of non-cancelled entries (O(n); for tests/diagnostics)."""
        return sum(
            1
            for entry in self._heap
            if not (type(entry[2]) is Event and entry[2].cancelled)
        )

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule a cancellable callback; returns its :class:`Event` handle."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback)
        heappush(self._heap, (time, seq, event))
        return event

    def push_callback(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule a fire-and-forget callback with no handle allocation.

        This is the hot path: the callable itself is the heap payload.
        """
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, callback))

    def pop(self) -> Event | None:
        """Pop the earliest live entry as an :class:`Event`, or None if empty.

        Bare-callback entries are wrapped in a fresh handle on the way out —
        this accessor serves ``step()`` and tests, not the run loop, which
        works on the heap directly.
        """
        heap = self._heap
        while heap:
            time, seq, item = heappop(heap)
            if type(item) is Event:
                if item.cancelled:
                    self.cancelled_dropped += 1
                    continue
            else:
                item = Event(time, seq, item)
            # Eager compaction: drain cancelled entries now at the top
            # so the next pop/peek starts from a live event.
            while heap and type(heap[0][2]) is Event and heap[0][2].cancelled:
                heappop(heap)
                self.cancelled_dropped += 1
            return item
        return None

    def peek_time(self) -> int | None:
        """Return the timestamp of the earliest live event without popping."""
        heap = self._heap
        while heap and type(heap[0][2]) is Event and heap[0][2].cancelled:
            heappop(heap)
            self.cancelled_dropped += 1
        if heap:
            return heap[0][0]
        return None


class Simulator:
    """The simulation kernel: a clock plus an event queue.

    Components hold a reference to the simulator and call :meth:`post`
    (relative delay, no handle) / :meth:`post_at` (absolute cycle, no
    handle) on hot paths, or :meth:`schedule` / :meth:`schedule_at` when
    they need a cancellable :class:`Event` handle back.  ``run`` drains
    the queue until it is empty or a cycle/event limit is hit.
    """

    def __init__(self, max_cycles: int | None = None, max_events: int | None = None) -> None:
        self.now: int = 0
        self.queue = EventQueue()
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.events_processed: int = 0
        self._running = False
        self._end_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` cycles from now; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} scheduled at cycle {self.now}")
        return self.queue.push(self.now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"event scheduled in the past: {time} < now {self.now}")
        return self.queue.push(int(time), callback)

    def post(self, delay: int, callback: Callable[[], None]) -> None:
        """Hot-path :meth:`schedule`: no cancellation handle, no allocation."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} scheduled at cycle {self.now}")
        self.queue.push_callback(self.now + int(delay), callback)

    def post_at(self, time: int, callback: Callable[[], None]) -> None:
        """Hot-path :meth:`schedule_at`: no cancellation handle, no allocation."""
        if time < self.now:
            raise SimulationError(f"event scheduled in the past: {time} < now {self.now}")
        self.queue.push_callback(int(time), callback)

    def add_end_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook invoked once when the run finishes."""
        self._end_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Drain the event queue.  Returns the final simulation cycle.

        The loop works on the heap directly with everything hoisted into
        locals — this is the hottest code in the repository (every simulated
        cycle of every sweep goes through it), and attribute lookups per
        event are measurable at that volume.

        The cyclic garbage collector is paused for the duration of the
        drain: the engine's own garbage (heap tuples, packets, lambdas) is
        acyclic and freed by refcounting, so gen-0 scans during the run are
        pure overhead.  The collector is restored — and run once — on exit,
        so long-lived cycles created by a run are still reclaimed between
        cells of a sweep.
        """
        heap = self.queue._heap
        pop = heappop
        event_cls = Event
        max_cycles = self.max_cycles
        max_events = self.max_events
        processed = self.events_processed
        cancelled = 0
        self._running = True
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                if max_events is not None and processed >= max_events:
                    break
                time, _seq, item = pop(heap)
                if type(item) is event_cls:
                    if item.cancelled:
                        cancelled += 1
                        continue
                    item = item.callback
                if max_cycles is not None and time > max_cycles:
                    break
                if time < self.now:
                    raise SimulationError(
                        f"time went backwards: event at {time}, now {self.now}"
                    )
                self.now = time
                processed += 1
                item()
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
            self.events_processed = processed
            self.queue.cancelled_dropped += cancelled
            self._running = False
        for hook in self._end_hooks:
            hook()
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        event.callback()
        return True


__all__ = ["Event", "EventQueue", "Simulator", "SimulationError"]
