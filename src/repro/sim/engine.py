"""Heap-based discrete-event simulation engine.

The simulator advances a cycle-granularity clock (1 cycle = 1 ns at the
paper's 1 GHz shader clock) by popping the earliest pending event and
invoking its callback.  Components never busy-wait: everything that takes
time — link serialization, AES-GCM pad generation, HBM access — is expressed
as an event scheduled at an absolute cycle.

Events scheduled for the same cycle run in FIFO order of scheduling, which
keeps runs fully deterministic for a fixed workload seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the engine detects an inconsistent schedule."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Ordering is by ``(time, seq)`` so same-cycle events preserve scheduling
    order.  ``cancelled`` events stay in the heap but are skipped when popped
    (lazy deletion), which is cheaper than heap surgery.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> int | None:
        """Return the timestamp of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None


class Simulator:
    """The simulation kernel: a clock plus an event queue.

    Components hold a reference to the simulator and call :meth:`schedule`
    (relative delay) or :meth:`schedule_at` (absolute cycle).  ``run`` drains
    the queue until it is empty or a cycle/event limit is hit.
    """

    def __init__(self, max_cycles: int | None = None, max_events: int | None = None) -> None:
        self.now: int = 0
        self.queue = EventQueue()
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.events_processed: int = 0
        self._running = False
        self._end_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} scheduled at cycle {self.now}")
        return self.queue.push(self.now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"event scheduled in the past: {time} < now {self.now}")
        return self.queue.push(int(time), callback)

    def add_end_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook invoked once when the run finishes."""
        self._end_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Drain the event queue.  Returns the final simulation cycle."""
        self._running = True
        try:
            while True:
                if self.max_events is not None and self.events_processed >= self.max_events:
                    break
                event = self.queue.pop()
                if event is None:
                    break
                if self.max_cycles is not None and event.time > self.max_cycles:
                    break
                if event.time < self.now:
                    raise SimulationError(
                        f"time went backwards: event at {event.time}, now {self.now}"
                    )
                self.now = event.time
                self.events_processed += 1
                event.callback()
        finally:
            self._running = False
        for hook in self._end_hooks:
            hook()
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        event.callback()
        return True


__all__ = ["Event", "EventQueue", "Simulator", "SimulationError"]
