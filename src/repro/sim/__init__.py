"""Discrete-event simulation substrate.

This package provides the cycle-timestamped event engine that every other
subsystem (interconnect, GPUs, secure channels) schedules work on, plus the
statistics primitives used to collect the paper's measurements.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.stats import Counter, Histogram, IntervalSeries, RatioStat, StatsRegistry

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Counter",
    "Histogram",
    "IntervalSeries",
    "RatioStat",
    "StatsRegistry",
]
