"""Statistics primitives used by the measurement harness.

The paper reports four kinds of quantities and each has a matching
primitive here:

* scalar event counts (requests sent, bytes transferred) — :class:`Counter`
* distributions (time for 16 blocks to accumulate, Figs 15/16) —
  :class:`Histogram` with explicit bin edges
* per-interval time series (send/receive ratio over execution, Figs 13/14) —
  :class:`IntervalSeries`
* hit/partial/miss style decompositions (Figs 10/22) — :class:`RatioStat`

A :class:`StatsRegistry` groups the stats a component owns so reports can
walk them generically.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named last-write-wins measurement (a derived rate, a final level)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: int | float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Histogram over explicit bin edges.

    ``edges = [a, b, c]`` creates bins ``[-inf, a) [a, b) [b, c) [c, inf)``.
    The paper's burstiness figures use edges ``[40, 160, 640, 2560]``.
    """

    def __init__(self, name: str, edges: list[int | float]) -> None:
        if sorted(edges) != list(edges):
            raise ValueError("histogram edges must be sorted")
        self.name = name
        self.edges = list(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self._sum = 0.0

    def record(self, value: int | float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += 1
        self._sum += value

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    def fractions(self) -> list[float]:
        """Per-bin fractions of all recorded samples (sums to 1 when any)."""
        if not self.total:
            return [0.0] * len(self.counts)
        return [c / self.total for c in self.counts]

    def bin_labels(self) -> list[str]:
        """Labels matching :meth:`record`'s binning exactly.

        ``bisect_right`` routes every value below ``edges[0]`` — negative
        samples included — into the first bin, so its label is
        ``[-inf, edges[0])``, not ``[0, edges[0])``.
        """
        labels = [f"[-inf, {self.edges[0]})"] if self.edges else ["all"]
        for lo, hi in zip(self.edges, self.edges[1:]):
            labels.append(f"[{lo}, {hi})")
        if self.edges:
            labels.append(f"[{self.edges[-1]}, inf)")
        return labels


class IntervalSeries:
    """Accumulates values into fixed-width time intervals.

    Used for the communication-pattern timelines (Figs 13/14): each call to
    :meth:`record` adds ``amount`` into the interval that contains ``time``.
    Multiple named channels share the interval grid, so per-destination
    decompositions line up.
    """

    def __init__(self, name: str, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.name = name
        self.interval = interval
        self._channels: dict[str, dict[int, float]] = {}

    def record(self, time: int, channel: str, amount: float = 1.0) -> None:
        bucket = time // self.interval
        chan = self._channels.setdefault(channel, {})
        chan[bucket] = chan.get(bucket, 0.0) + amount

    def channels(self) -> list[str]:
        return sorted(self._channels)

    def series(self, channel: str, n_buckets: int | None = None) -> list[float]:
        """Dense series for one channel, zero-filled to ``n_buckets``."""
        chan = self._channels.get(channel, {})
        if n_buckets is None:
            n_buckets = (max(chan) + 1) if chan else 0
        return [chan.get(i, 0.0) for i in range(n_buckets)]

    def n_buckets(self) -> int:
        highest = -1
        for chan in self._channels.values():
            if chan:
                highest = max(highest, max(chan))
        return highest + 1

    def stacked_fractions(self, n_buckets: int | None = None) -> dict[str, list[float]]:
        """Per-bucket fraction of each channel (stacked-area view)."""
        if n_buckets is None:
            n_buckets = self.n_buckets()
        dense = {c: self.series(c, n_buckets) for c in self.channels()}
        totals = [sum(dense[c][i] for c in dense) for i in range(n_buckets)]
        out: dict[str, list[float]] = {}
        for chan, values in dense.items():
            out[chan] = [v / t if t else 0.0 for v, t in zip(values, totals)]
        return out


@dataclass
class RatioStat:
    """Counts of categorical outcomes, reported as fractions.

    The OTP hit/partial/miss decomposition uses exactly this.
    """

    name: str
    counts: dict[str, int] = field(default_factory=dict)

    def record(self, category: str, amount: int = 1) -> None:
        self.counts[category] = self.counts.get(category, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, category: str) -> float:
        total = self.total
        return self.counts.get(category, 0) / total if total else 0.0

    def fractions(self) -> dict[str, float]:
        total = self.total
        if not total:
            return {k: 0.0 for k in self.counts}
        return {k: v / total for k, v in self.counts.items()}

    def merge(self, other: "RatioStat") -> None:
        for key, val in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + val


@dataclass
class FaultStats:
    """Ledger of injected link faults and the recovery work they caused.

    Injection counters record what the :class:`~repro.interconnect.faults.
    FaultInjector` did to the wire; recovery counters record what the
    secure channel spent to survive it (the quantities
    ``experiments.fig_fault_sweep`` surfaces per scheme).  The two
    ``*_deliveries``/``lost_messages`` counters only ever move on the
    *unsecure* fabric, which has no detection: they are the silent-data-
    corruption cost the paper's protocol exists to eliminate.
    """

    # --- injected by the link ------------------------------------------
    drops_injected: int = 0
    corruptions_injected: int = 0
    duplicates_injected: int = 0
    delays_injected: int = 0
    # --- detected / absorbed by the secure channel ---------------------
    corruptions_detected: int = 0  # MsgMAC rejections before delivery
    duplicates_discarded: int = 0  # wire replays rejected by counter check
    spurious_retransmits: int = 0  # late originals raced their retransmit
    # --- recovery work -------------------------------------------------
    nacks_sent: int = 0
    timeouts_fired: int = 0
    retransmits: int = 0
    backoff_cycles: int = 0  # cycles spent waiting on expired RTO timers
    wasted_otps: int = 0  # pads burned on copies that never delivered
    link_failures: int = 0  # retry budgets exhausted (LinkFailureError)
    # --- silent damage on the unsecure fabric --------------------------
    lost_messages: int = 0  # payloads lost in flight, nobody noticed
    corrupted_deliveries: int = 0  # garbage blocks consumed by a device

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)

    def merge(self, other: "FaultStats") -> None:
        for name, value in other.__dict__.items():
            setattr(self, name, getattr(self, name) + value)

    @property
    def undetected(self) -> int:
        """Faults that reached a device without anyone noticing."""
        return self.lost_messages + self.corrupted_deliveries


class StatsRegistry:
    """A flat namespace of stats owned by one component."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._stats: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name))

    def histogram(self, name: str, edges: list[int | float]) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, edges))

    def interval_series(self, name: str, interval: int) -> IntervalSeries:
        return self._get_or_create(name, lambda: IntervalSeries(name, interval))

    def ratio(self, name: str) -> RatioStat:
        return self._get_or_create(name, lambda: RatioStat(name))

    def _get_or_create(self, name, factory):
        stat = self._stats.get(name)
        if stat is None:
            stat = factory()
            self._stats[name] = stat
        return stat

    def get(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def all(self) -> dict[str, object]:
        return dict(self._stats)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalSeries",
    "RatioStat",
    "FaultStats",
    "StatsRegistry",
]
