"""Figures 24 and 25: scaling to 8- and 16-GPU systems.

Private, Cached, and Ours (Dynamic + Batching) at OTP 4x — 64 OTP buffers
per GPU at 8 GPUs, 128 at 16 GPUs, exactly the paper's §V-D provisioning —
normalized to the unsecure system of the same size.

Paper anchors: Ours improves 17.1 % / 9.2 % (8 GPUs) and 17.5 % / 13.2 %
(16 GPUs) over Private / Cached; the improvement *grows* with GPU count.
Our simulator reproduces the growth of both gaps; absolute overheads stay
roughly flat instead of growing (see EXPERIMENTS.md for the deviation
note).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import default_config, scheme_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean

SCHEME_KEYS = ("private", "cached", "ours")


@dataclass
class ScalingResult:
    n_gpus: int
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, key: str) -> float:
        return geometric_mean([per_wl[key] for per_wl in self.slowdowns.values()])

    def improvement_over(self, prior: str) -> float:
        return self.average(prior) / self.average("ours") - 1.0


def run(n_gpus: int, runner: ExperimentRunner | None = None) -> ScalingResult:
    runner = runner or ExperimentRunner(n_gpus=n_gpus)
    if runner.n_gpus != n_gpus:
        raise ValueError("runner's GPU count must match the experiment's")
    configs = {
        "private": scheme_config("private", n_gpus=n_gpus),
        "cached": scheme_config("cached", n_gpus=n_gpus),
        "ours": default_config(n_gpus, scheme="dynamic", batching=True),
    }
    result = ScalingResult(n_gpus=n_gpus)
    for wl in runner.sweep(configs):
        result.slowdowns[wl.spec.abbr] = {k: wl.slowdown(k) for k in SCHEME_KEYS}
    return result


def format_result(result: ScalingResult) -> str:
    fig = {8: 24, 16: 25}.get(result.n_gpus, "24/25")
    rows = [
        [abbr, *[fmt(per_wl[k]) for k in SCHEME_KEYS]]
        for abbr, per_wl in result.slowdowns.items()
    ]
    rows.append(["average", *[fmt(result.average(k)) for k in SCHEME_KEYS]])
    table = format_table(
        f"Figure {fig}: execution time, {result.n_gpus} GPUs (normalized to unsecure)",
        ["workload", "Private", "Cached", "Ours"],
        rows,
    )
    summary = (
        f"Ours improves {result.improvement_over('private'):+.1%} over Private, "
        f"{result.improvement_over('cached'):+.1%} over Cached"
    )
    return f"{table}\n{summary}"


__all__ = ["run", "format_result", "ScalingResult", "SCHEME_KEYS"]
