"""Full evaluation report: regenerate every paper table/figure in one go.

``generate_all`` runs the complete experiment suite — sharing one
:class:`ExperimentRunner` per system size so baselines and overlapping
configurations are simulated once — and writes each table to
``out_dir/<name>.txt`` plus a combined ``report.txt``.

Each section runs inside a :meth:`~repro.obs.Telemetry.phase`, and the
resulting wall-clock profile lands in ``out_dir/PROFILE.json`` — the
cheapest way to see which figure dominates a full regeneration (see
``docs/OBSERVABILITY.md``).

Used by ``repro-sim experiment`` and by the EXPERIMENTS.md record.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import Telemetry

from repro.experiments import (
    fig08_otp_sensitivity,
    fig09_prior_schemes,
    fig10_otp_distribution,
    fig11_overhead_breakdown,
    fig12_traffic,
    fig13_14_timelines,
    fig15_16_burstiness,
    fig21_main_result,
    fig24_25_scaling,
    fig26_aes_latency,
    fig_collectives,
    hw_overhead,
    table1_storage,
)
from repro.experiments.common import ExperimentRunner


def generate_all(
    out_dir: str | Path,
    scale: float = 0.5,
    seed: int = 1,
    include_scaling: bool = True,
    verbose: bool = True,
    workloads: list | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    fleet_addr: str | None = None,
    fleet_key: bytes | None = None,
) -> dict[str, str]:
    """Run everything; returns {experiment name: formatted table}.

    ``workloads`` restricts the sweep (default: all 17 of Table IV).
    ``jobs``/``cache_dir``/``use_cache``/``fleet_addr``/``fleet_key``
    configure the sweep execution layer (see :class:`ExperimentRunner`)
    for every runner built here.
    """
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    exec_kwargs = {
        "jobs": jobs,
        "cache_dir": cache_dir,
        "use_cache": use_cache,
        "fleet_addr": fleet_addr,
        "fleet_key": fleet_key,
    }
    runner4 = ExperimentRunner(
        n_gpus=4, seed=seed, scale=scale, workloads=workloads, **exec_kwargs
    )
    telemetry = Telemetry()
    sections: dict[str, str] = {}

    def record(name: str, make) -> None:
        with telemetry.phase(f"experiment.{name}"):
            text = make()
        sections[name] = text
        (out_path / f"{name}.txt").write_text(text + "\n")
        if verbose:
            seconds = telemetry.phase_seconds(f"experiment.{name}")
            print(f"[{time.strftime('%H:%M:%S')}] {name} done ({seconds:.1f}s)", flush=True)

    record("table1_storage", lambda: table1_storage.format_result(table1_storage.run()))
    record(
        "hw_overhead",
        lambda: hw_overhead.format_result([hw_overhead.compute(4, m) for m in (1, 4, 16)]),
    )
    record(
        "fig15_16_burstiness",
        lambda: "\n\n".join(
            fig15_16_burstiness.format_result(fig15_16_burstiness.run(runner4), g)
            for g in (16, 32)
        ),
    )
    record("fig13_14_timelines", lambda: fig13_14_timelines.format_result(fig13_14_timelines.run(runner4)))
    record("fig08_otp_sensitivity", lambda: fig08_otp_sensitivity.format_result(fig08_otp_sensitivity.run(runner4)))
    record("fig09_prior_schemes", lambda: fig09_prior_schemes.format_result(fig09_prior_schemes.run(runner4)))
    record("fig11_overhead_breakdown", lambda: fig11_overhead_breakdown.format_result(fig11_overhead_breakdown.run(runner4)))
    record("fig21_main_result", lambda: fig21_main_result.format_result(fig21_main_result.run(runner4)))
    record("fig10_22_otp_distribution", lambda: fig10_otp_distribution.format_result(fig10_otp_distribution.run(runner4)))
    record("fig12_23_traffic", lambda: fig12_traffic.format_result(fig12_traffic.run(runner4)))
    record("fig26_aes_latency", lambda: fig26_aes_latency.format_result(fig26_aes_latency.run(runner4)))
    if workloads is None:
        # The collectives sweep has its own workload set (the `collective`
        # registry class), so a restricted Table IV list skips it.
        record(
            "fig_collectives",
            lambda: fig_collectives.format_result(fig_collectives.run(runner4)),
        )

    if include_scaling:
        for n in (8, 16):
            runner = ExperimentRunner(
                n_gpus=n, seed=seed, scale=scale, workloads=workloads, **exec_kwargs
            )
            record(
                f"fig{24 if n == 8 else 25}_scaling_{n}gpus",
                lambda n=n, runner=runner: fig24_25_scaling.format_result(
                    fig24_25_scaling.run(n, runner)
                ),
            )

    combined = "\n\n\n".join(sections[k] for k in sections)
    (out_path / "report.txt").write_text(combined + "\n")
    (out_path / "PROFILE.json").write_text(
        json.dumps(telemetry.profile_snapshot(), indent=2, sort_keys=True) + "\n"
    )
    return sections


__all__ = ["generate_all"]
