"""Figures 15 and 16: burstiness of inter-processor data transfers.

For every directed processor pair, the time for 16 (Fig. 15) and 32
(Fig. 16) data blocks to accumulate, bucketed into the paper's histogram
bins [0,40) [40,160) [160,640) [640,2560) [2560,inf).

Paper anchors: 16 blocks accumulate within 160 cycles 69.2 % of the time
on average; 32 blocks within 160 cycles 44.2 % of the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, format_table
from repro.secure.channel import BURST_EDGES


@dataclass
class BurstinessResult:
    n_gpus: int
    edges: list[int]
    # workload -> [fractions per bin] for each group size
    burst16: dict[str, list[float]] = field(default_factory=dict)
    burst32: dict[str, list[float]] = field(default_factory=dict)

    def _within(self, table: dict[str, list[float]], n_bins: int) -> float:
        """Average fraction accumulated within the first ``n_bins`` bins."""
        vals = [sum(frac[:n_bins]) for frac in table.values() if sum(frac) > 0]
        return sum(vals) / len(vals) if vals else 0.0

    def fraction_within_160(self, group: int) -> float:
        table = self.burst16 if group == 16 else self.burst32
        return self._within(table, 2)  # bins [0,40) + [40,160)


def run(runner: ExperimentRunner | None = None) -> BurstinessResult:
    runner = runner or ExperimentRunner()
    config = scheme_config("unsecure", n_gpus=runner.n_gpus)
    result = BurstinessResult(n_gpus=runner.n_gpus, edges=list(BURST_EDGES))
    for spec in runner.workloads:
        report = runner.run(spec, config)
        result.burst16[spec.abbr] = report.burst16_fractions
        result.burst32[spec.abbr] = report.burst32_fractions
    return result


def _bin_labels(edges: list[int]) -> list[str]:
    labels = [f"[0,{edges[0]})"]
    labels += [f"[{a},{b})" for a, b in zip(edges, edges[1:])]
    labels.append(f"[{edges[-1]},inf)")
    return labels


def format_result(result: BurstinessResult, group: int = 16) -> str:
    table = result.burst16 if group == 16 else result.burst32
    labels = _bin_labels(result.edges)
    rows = [
        [abbr, *[f"{v:.1%}" for v in fracs]]
        for abbr, fracs in table.items()
    ]
    rows.append(
        [
            "avg<160cyc",
            f"{result.fraction_within_160(group):.1%}",
            *[""] * (len(labels) - 1),
        ]
    )
    fig = 15 if group == 16 else 16
    return format_table(
        f"Figure {fig}: cycles for {group} data blocks to accumulate "
        f"({result.n_gpus} GPUs, unsecure)",
        ["workload", *labels],
        rows,
    )


__all__ = ["run", "format_result", "BurstinessResult"]
