"""Figure 8: Private-scheme sensitivity to the OTP buffer multiplier.

Sweeps OTP 1x → 16x in a 4-GPU system and reports per-workload and average
slowdowns vs the unsecure baseline.  The paper's anchors: OTP 1x degrades
121.1 % on average; 16x degrades 14.0 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean

MULTIPLIERS = (1, 2, 4, 8, 16)


@dataclass
class OtpSensitivityResult:
    n_gpus: int
    multipliers: tuple[int, ...]
    slowdowns: dict[str, dict[int, float]] = field(default_factory=dict)  # workload -> Nx -> slowdown

    def average(self, multiplier: int) -> float:
        return geometric_mean([per_wl[multiplier] for per_wl in self.slowdowns.values()])


def run(
    runner: ExperimentRunner | None = None,
    multipliers: tuple[int, ...] = MULTIPLIERS,
) -> OtpSensitivityResult:
    runner = runner or ExperimentRunner()
    configs = {
        f"private_{m}x": scheme_config("private", n_gpus=runner.n_gpus, otp_multiplier=m)
        for m in multipliers
    }
    result = OtpSensitivityResult(n_gpus=runner.n_gpus, multipliers=multipliers)
    for wl in runner.sweep(configs):
        result.slowdowns[wl.spec.abbr] = {
            m: wl.slowdown(f"private_{m}x") for m in multipliers
        }
    return result


def format_result(result: OtpSensitivityResult) -> str:
    columns = ["workload", *[f"OTP {m}x" for m in result.multipliers]]
    rows = [
        [abbr, *[fmt(per_wl[m]) for m in result.multipliers]]
        for abbr, per_wl in result.slowdowns.items()
    ]
    rows.append(["average", *[fmt(result.average(m)) for m in result.multipliers]])
    return format_table(
        f"Figure 8: Private slowdown vs OTP entries ({result.n_gpus} GPUs, "
        "normalized to unsecure)",
        columns,
        rows,
    )


__all__ = ["run", "format_result", "OtpSensitivityResult", "MULTIPLIERS"]
