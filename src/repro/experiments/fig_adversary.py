"""Active-adversary sweep: attack mixes vs. schemes, zero-undetected contract.

Puts an adversary *in the fabric* (:mod:`repro.secure.adversary`) and sweeps
attack mixes across schemes.  The headline asymmetry mirrors the fault
sweep, but against a malicious rather than a merely unreliable link: the
unsecure baseline consumes tampered, replayed, spliced, and forged blocks
without ever noticing (``accepted`` counts them), while every secure scheme
must end the run with **zero** accepted-undetected attacks — each injected
manipulation either dies at the MsgMAC / counter check (``detected``) or
provably changed nothing (``harmless``, e.g. a reorder the counter protocol
absorbs).  A per-transport :class:`~repro.secure.invariants.InvariantMonitor`
sanitizer independently audits every run, so a contract breach fails twice.

The composite "attack rate" r splits into the seven attack classes as 25 %
ciphertext flips, 10 % MAC flips, 20 % replays, 15 % reorders, 10 %
truncations, 10 % cross-link splices, and 10 % forgeries per the "all" mix;
the focused mixes concentrate the same budget on one attack family.

Not a paper figure: this is the reproduction's adversarial-robustness
harness (see ``docs/ROBUSTNESS.md``), run at small scale as a CI smoke
check via :func:`smoke`, which additionally exercises detection-driven
link quarantine and reroute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import SystemConfig, scheme_config
from repro.experiments.ascii_chart import hbar_chart
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean
from repro.secure.adversary import AttackReport
from repro.workloads import get_workload

#: Composite attack rate: probability any one data-block wire copy is hit.
RATE = 0.04

#: Named attack mixes: fractions of the composite rate per attack class.
MIXES: dict[str, dict[str, float]] = {
    # everything at once, weighted toward the cheap high-volume attacks
    "all": {
        "flip_cipher_rate": 0.25,
        "flip_mac_rate": 0.10,
        "replay_rate": 0.20,
        "reorder_rate": 0.15,
        "truncate_rate": 0.10,
        "splice_rate": 0.10,
        "forge_rate": 0.10,
    },
    # integrity attacks only: bit flips and truncation die at the MsgMAC
    "tamper": {
        "flip_cipher_rate": 0.5,
        "flip_mac_rate": 0.25,
        "truncate_rate": 0.25,
    },
    # freshness attacks only: replays and window-boundary reorders
    "replay": {
        "replay_rate": 0.6,
        "reorder_rate": 0.4,
    },
    # injection attacks only: cross-link splices and from-scratch forgeries
    "inject": {
        "splice_rate": 0.5,
        "forge_rate": 0.5,
    },
}

#: Schemes compared: the undefended baseline and one representative of each
#: secure protocol family (conventional, dynamic allocation, batching).
SCHEMES = ("unsecure", "private", "dynamic", "batching")


def adversary_overrides(
    mix: str, rate: float = RATE, seed: int = 0, quarantine_threshold: int = 0
) -> dict[str, float | int]:
    """Split a composite attack rate into the per-class injector knobs."""
    out: dict[str, float | int] = {
        knob: fraction * rate for knob, fraction in MIXES[mix].items()
    }
    out["seed"] = seed
    out["quarantine_threshold"] = quarantine_threshold
    return out


def adversary_config(
    scheme: str,
    mix: str,
    rate: float = RATE,
    n_gpus: int = 4,
    quarantine_threshold: int = 0,
) -> SystemConfig:
    """Scheme config under one attack mix (rate 0 = the pristine config,
    so its cells hash and simulate identically to an adversary-free sweep)."""
    config = scheme_config(scheme, n_gpus=n_gpus)
    if rate > 0:
        config = config.with_adversary(
            **adversary_overrides(mix, rate, quarantine_threshold=quarantine_threshold)
        )
    return config


@dataclass
class AdversaryResult:
    n_gpus: int
    rate: float
    mixes: tuple[str, ...]
    schemes: tuple[str, ...]
    #: scheme -> mix -> geomean slowdown vs. the attack-free unsecure run
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)
    #: scheme -> mix -> attack ledgers merged across workloads
    attack_totals: dict[str, dict[str, AttackReport]] = field(default_factory=dict)

    def accepted(self, scheme: str, mix: str) -> int:
        return self.attack_totals[scheme][mix].accepted_undetected


def run(
    runner: ExperimentRunner | None = None,
    rate: float = RATE,
    mixes: tuple[str, ...] = tuple(MIXES),
    schemes: tuple[str, ...] = SCHEMES,
) -> AdversaryResult:
    runner = runner or ExperimentRunner()
    grid = [
        (spec, scheme, mix)
        for spec in runner.workloads
        for scheme in schemes
        for mix in mixes
    ]
    cells = [
        (spec, adversary_config(scheme, mix, rate, n_gpus=runner.n_gpus))
        for spec, scheme, mix in grid
    ]
    reports = dict(zip(grid, runner.run_many(cells)))
    baselines = {
        spec: runner.run(spec, scheme_config("unsecure", n_gpus=runner.n_gpus))
        for spec in runner.workloads
    }

    result = AdversaryResult(
        n_gpus=runner.n_gpus, rate=rate, mixes=mixes, schemes=schemes
    )
    for scheme in schemes:
        result.slowdowns[scheme] = {}
        result.attack_totals[scheme] = {}
        for mix in mixes:
            ratios = []
            totals = AttackReport()
            for spec in runner.workloads:
                report = reports[(spec, scheme, mix)]
                ratios.append(report.slowdown_vs(baselines[spec]))
                if report.attack_report is not None:
                    totals.merge(report.attack_report)
            result.slowdowns[scheme][mix] = geometric_mean(ratios)
            result.attack_totals[scheme][mix] = totals
    return result


def assert_zero_undetected(result: AdversaryResult) -> int:
    """Fail loudly unless every secure scheme detected every effective attack.

    Returns the number of (scheme, mix) cells checked.  This is the
    contract the CI smoke job enforces: under every attack mix a secure
    scheme ends with ``accepted_undetected == 0`` and a fully resolved
    ledger, while the unsecure baseline *must* have accepted attacks —
    proving the injector genuinely lands its manipulations.
    """
    checked = 0
    for scheme in result.schemes:
        for mix in result.mixes:
            ledger = result.attack_totals[scheme][mix]
            if ledger.total_injected == 0:
                raise AssertionError(
                    f"{scheme} @ mix {mix!r}: no attacks injected — sweep too small?"
                )
            if ledger.unresolved:
                raise AssertionError(
                    f"{scheme} @ mix {mix!r}: {ledger.unresolved} injected "
                    "attack(s) never resolved"
                )
            if scheme == "unsecure":
                continue
            if ledger.accepted_undetected:
                raise AssertionError(
                    f"{scheme} @ mix {mix!r}: {ledger.accepted_undetected} "
                    "attack(s) accepted undetected"
                )
            checked += 1
    unsecure = result.attack_totals.get("unsecure")
    if unsecure is not None:
        landed = sum(ledger.accepted_undetected for ledger in unsecure.values())
        if not landed:
            raise AssertionError(
                "unsecure baseline accepted no attacks — injector ineffective?"
            )
    return checked


def check_quarantine(
    scale: float = 0.05,
    threshold: int = 3,
    jobs: int | None = None,
    use_cache: bool | None = None,
) -> AttackReport:
    """Drive repeated tamper detections into link quarantine and reroute.

    Runs one tamper-heavy cell with a finite quarantine threshold and
    asserts that at least one directed link was quarantined, that the run
    still completed (traffic rerouted over the memoized alternate path),
    and that the zero-undetected contract survived the failover.
    """
    runner = ExperimentRunner(
        scale=scale,
        workloads=[get_workload("fir")],
        jobs=jobs,
        use_cache=use_cache,
    )
    spec = runner.workloads[0]
    config = adversary_config(
        "private", "tamper", rate=2 * RATE, n_gpus=runner.n_gpus,
        quarantine_threshold=threshold,
    )
    report = runner.run(spec, config)
    ledger = report.attack_report
    if ledger is None or not ledger.quarantined:
        raise AssertionError(
            f"quarantine threshold {threshold} triggered no link quarantine"
        )
    if ledger.accepted_undetected or ledger.unresolved:
        raise AssertionError(
            f"quarantine failover broke the contract: {ledger.as_dict()}"
        )
    return ledger


def format_result(result: AdversaryResult) -> str:
    mix_cols = list(result.mixes)
    rows = [
        [scheme, *[fmt(result.slowdowns[scheme][mix]) for mix in result.mixes]]
        for scheme in result.schemes
    ]
    table = format_table(
        f"Adversary sweep: slowdown vs. attack-free unsecure "
        f"(r={result.rate:g}, {result.n_gpus} GPUs)",
        ["scheme", *mix_cols],
        rows,
    )

    ledger_rows = []
    for scheme in result.schemes:
        totals = AttackReport()
        for mix in result.mixes:
            totals.merge(result.attack_totals[scheme][mix])
        ledger_rows.append(
            [
                scheme,
                str(totals.total_injected),
                str(totals.total_detected),
                str(totals.total_harmless),
                str(totals.accepted_undetected),
            ]
        )
    ledger = format_table(
        "Attack ledger merged across mixes",
        ["scheme", "injected", "detected", "harmless", "accepted"],
        ledger_rows,
    )

    chart = hbar_chart(
        "Slowdown under the 'all' mix (| marks the attack-free baseline)",
        [(scheme, result.slowdowns[scheme]["all"]) for scheme in result.schemes],
        baseline=1.0,
    )
    return "\n\n".join([table, ledger, chart])


#: Small high-traffic workload set for the CI smoke run: enough remote
#: data blocks to exercise every attack class without a long wall clock.
SMOKE_WORKLOADS = ("fir", "stencil2d", "matrixtranspose")


def smoke(
    scale: float = 0.05,
    mixes: tuple[str, ...] = tuple(MIXES),
    jobs: int | None = None,
    use_cache: bool | None = None,
) -> AdversaryResult:
    """CI-scale adversary sweep enforcing the zero-undetected contract."""
    runner = ExperimentRunner(
        scale=scale,
        workloads=[get_workload(name) for name in SMOKE_WORKLOADS],
        jobs=jobs,
        use_cache=use_cache,
    )
    result = run(runner, mixes=mixes)
    checked = assert_zero_undetected(result)
    quarantined = check_quarantine(scale=scale, jobs=jobs, use_cache=use_cache)
    injected = sum(
        result.attack_totals[s][m].total_injected
        for s in result.schemes
        for m in result.mixes
    )
    print(format_result(result))
    print(
        f"\nsmoke: {checked} secure cells checked, {injected} attacks injected, "
        f"0 accepted undetected; quarantine rerouted "
        f"{len(quarantined.quarantined)} link(s)"
    )
    return result


__all__ = [
    "RATE",
    "MIXES",
    "SCHEMES",
    "SMOKE_WORKLOADS",
    "AdversaryResult",
    "adversary_overrides",
    "adversary_config",
    "run",
    "assert_zero_undetected",
    "check_quarantine",
    "format_result",
    "smoke",
]
