"""Terminal bar charts for experiment results.

The reproduction is a text-first tool; these renderers make the figures
readable at a glance in a terminal or a results file without any plotting
dependency.  Used by ``repro-sim experiment`` output and the examples.
"""

from __future__ import annotations


def hbar_chart(
    title: str,
    items: list[tuple[str, float]],
    width: int = 48,
    baseline: float | None = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of labeled values.

    ``baseline`` draws a marker column (e.g. the unsecure 1.0 line) when it
    falls inside the plotted range.
    """
    if not items:
        raise ValueError("nothing to chart")
    if width < 8:
        raise ValueError("width too small to render bars")
    values = [v for _, v in items]
    lo = min(values)
    hi = max(values)
    if baseline is not None:
        lo = min(lo, baseline)
        hi = max(hi, baseline)
    # zoom into the occupied range with a margin, so clustered values
    # (e.g. slowdowns near 1.0) stay visually distinguishable
    margin = (hi - lo) * 0.15 or abs(hi) * 0.05 or 1.0
    lo -= margin
    span = (hi - lo) or 1.0
    label_w = max(len(label) for label, _ in items)

    def column(value: float) -> int:
        return round((value - lo) / span * (width - 1))

    marker_col = column(baseline) if baseline is not None else None
    lines = [title, "-" * len(title)]
    for label, value in items:
        filled = column(value)
        bar = ["#" if i <= filled else " " for i in range(width)]
        if marker_col is not None and bar[marker_col] == " ":
            bar[marker_col] = "|"
        lines.append(f"{label.ljust(label_w)}  {''.join(bar)} {fmt.format(value)}")
    if baseline is not None:
        lines.append(f"{''.ljust(label_w)}  ('|' marks {fmt.format(baseline)})")
    return "\n".join(lines)


def stacked_bar(
    title: str,
    items: list[tuple[str, dict[str, float]]],
    symbols: dict[str, str],
    width: int = 40,
) -> str:
    """Stacked 100 % bars, e.g. the OTP hit/partial/miss decomposition.

    Each item's parts must be fractions summing to ~1; ``symbols`` maps a
    part name to its fill character.
    """
    if not items:
        raise ValueError("nothing to chart")
    label_w = max(len(label) for label, _ in items)
    lines = [title, "-" * len(title)]
    for label, parts in items:
        total = sum(parts.values())
        if total <= 0:
            lines.append(f"{label.ljust(label_w)}  (no data)")
            continue
        bar = ""
        used = 0
        part_list = [(k, v) for k, v in parts.items() if k in symbols]
        for idx, (part, value) in enumerate(part_list):
            if idx == len(part_list) - 1:
                cells = width - used  # last part absorbs rounding
            else:
                cells = round(value / total * width)
            bar += symbols[part] * max(0, cells)
            used += cells
        lines.append(f"{label.ljust(label_w)}  [{bar[:width]}]")
    legend = "  ".join(f"{sym}={name}" for name, sym in symbols.items())
    lines.append(f"{''.ljust(label_w)}  {legend}")
    return "\n".join(lines)


__all__ = ["hbar_chart", "stacked_bar"]
