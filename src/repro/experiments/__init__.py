"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(...)`` returning a typed result object and
``format_table(result)`` rendering the same rows/series the paper plots.
The benchmarks in ``benchmarks/`` are thin wrappers over these.

Experiment index (see DESIGN.md §4 for the full mapping):

========  ====================================================
Table I   ``table1_storage``      OTP storage vs entries
Fig 8     ``fig08_otp_sensitivity``  Private, OTP 1x-16x
Fig 9     ``fig09_prior_schemes``    Private/Shared/Cached
Fig 10/22 ``fig10_otp_distribution`` hit/partial/miss split
Fig 11    ``fig11_overhead_breakdown`` +SecureCommu / +Traffic
Fig 12/23 ``fig12_traffic``          traffic ratios
Fig 13/14 ``fig13_14_timelines``     communication timelines
Fig 15/16 ``fig15_16_burstiness``    burst accumulation times
Fig 21    ``fig21_main_result``      the headline comparison
Fig 24/25 ``fig24_25_scaling``       8- and 16-GPU systems
Fig 26    ``fig26_aes_latency``      AES-GCM latency sweep
§IV-D     ``hw_overhead``            hardware cost accounting
—         ``fig_fault_sweep``        unreliable-link recovery sweep
—         ``fig_collectives``        schemes × NCCL-style collectives
========  ====================================================

The last two are reproduction extensions, not paper figures: the fault
sweep prices detect-and-recover on an unreliable fabric
(``docs/ROBUSTNESS.md``), the collectives sweep prices the schemes on
production collective-communication traffic (``docs/WORKLOADS.md``).
"""

from repro.experiments.common import ExperimentRunner, WorkloadResult, geometric_mean

__all__ = ["ExperimentRunner", "WorkloadResult", "geometric_mean"]
