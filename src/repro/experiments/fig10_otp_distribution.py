"""Figures 10 and 22: OTP latency-hiding distribution.

For each scheme, the fraction of pad acquisitions that were fully hidden
(OTP_Hit), partially hidden (OTP_Partial), or not hidden (OTP_Miss), split
by direction — Fig. 10 compares the prior schemes, Fig. 22 adds "Ours"
(Dynamic + Batching).

Paper anchors (hidden = hit + partial): Private hides 36.9 % send /
72.7 % recv; Cached 75.9 % / 79.0 %; Ours lifts the *full-hit* fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, format_table
from repro.system import OtpDistribution


@dataclass
class OtpDistributionResult:
    n_gpus: int
    schemes: tuple[str, ...]
    # scheme -> direction ("send"/"recv") -> aggregated OtpDistribution
    distributions: dict[str, dict[str, OtpDistribution]] = field(default_factory=dict)


def run(
    runner: ExperimentRunner | None = None,
    schemes: tuple[str, ...] = ("private", "shared", "cached", "dynamic", "batching"),
) -> OtpDistributionResult:
    runner = runner or ExperimentRunner()
    configs = {s: scheme_config(s, n_gpus=runner.n_gpus) for s in schemes}
    sums: dict[str, dict[str, list[float]]] = {
        s: {"send": [0.0, 0.0, 0.0], "recv": [0.0, 0.0, 0.0]} for s in schemes
    }
    results = runner.sweep(configs)
    for wl in results:
        for s in schemes:
            report = wl.by_config[s]
            for direction, dist in (("send", report.otp_send), ("recv", report.otp_recv)):
                sums[s][direction][0] += dist.hit
                sums[s][direction][1] += dist.partial
                sums[s][direction][2] += dist.miss
    n = len(results)
    out = OtpDistributionResult(n_gpus=runner.n_gpus, schemes=schemes)
    for s in schemes:
        out.distributions[s] = {
            d: OtpDistribution(hit=v[0] / n, partial=v[1] / n, miss=v[2] / n)
            for d, v in sums[s].items()
        }
    return out


def format_result(result: OtpDistributionResult) -> str:
    rows = []
    for scheme in result.schemes:
        for direction in ("send", "recv"):
            dist = result.distributions[scheme][direction]
            rows.append(
                [
                    scheme,
                    direction,
                    f"{dist.hit:.1%}",
                    f"{dist.partial:.1%}",
                    f"{dist.miss:.1%}",
                    f"{dist.hidden:.1%}",
                ]
            )
    table = format_table(
        f"Figures 10/22: OTP latency distribution ({result.n_gpus} GPUs, OTP 4x, "
        "workload average)",
        ["scheme", "dir", "OTP_Hit", "OTP_Partial", "OTP_Miss", "hidden"],
        rows,
    )
    from repro.experiments.ascii_chart import stacked_bar

    chart = stacked_bar(
        "send-direction decomposition",
        [
            (s, {"hit": d["send"].hit, "partial": d["send"].partial, "miss": d["send"].miss})
            for s, d in result.distributions.items()
        ],
        symbols={"hit": "#", "partial": "+", "miss": "."},
    )
    return f"{table}\n\n{chart}"


__all__ = ["run", "format_result", "OtpDistributionResult"]
