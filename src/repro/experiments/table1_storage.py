"""Table I: on-chip storage overhead of the Private scheme.

Analytic reproduction.  An OTP buffer entry is (§IV-D):
valid bit (1) + encryption pad (512) + authentication pad (128) +
counter (64) = 705 bits.  A system of ``n`` GPUs has ``n`` processors'
tables on the GPU side, each with ``peers × 2 directions × multiplier``
entries, where peers = (n - 1) GPUs + 1 CPU = n.

Table I reports, per system size and OTP Nx: total storage (KB, across all
GPUs) and total entry count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table

ENTRY_BITS = 1 + 512 + 128 + 64  # valid + enc pad + auth pad + counter


@dataclass(frozen=True)
class StorageRow:
    n_gpus: int
    multiplier: int
    total_entries: int
    total_kib: float
    per_gpu_kib: float


def otp_entries_per_gpu(n_gpus: int, multiplier: int) -> int:
    """peers x 2 directions x N entries (peers include the CPU)."""
    peers = n_gpus  # (n_gpus - 1) other GPUs + 1 CPU
    return peers * 2 * multiplier


def storage_row(n_gpus: int, multiplier: int) -> StorageRow:
    per_gpu_entries = otp_entries_per_gpu(n_gpus, multiplier)
    total_entries = per_gpu_entries * n_gpus
    total_bits = total_entries * ENTRY_BITS
    total_kib = total_bits / 8 / 1024
    return StorageRow(
        n_gpus=n_gpus,
        multiplier=multiplier,
        total_entries=total_entries,
        total_kib=total_kib,
        per_gpu_kib=total_kib / n_gpus,
    )


def run(
    gpu_counts: tuple[int, ...] = (4, 8, 16, 32),
    multipliers: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[StorageRow]:
    return [storage_row(n, m) for n in gpu_counts for m in multipliers]


def format_result(rows: list[StorageRow]) -> str:
    table_rows = [
        [
            f"{r.n_gpus} GPUs",
            f"{r.multiplier}x",
            f"{r.total_kib:.2f} KB",
            f"{r.total_entries} OTPs",
            f"{r.per_gpu_kib:.2f} KB/GPU",
        ]
        for r in rows
    ]
    return format_table(
        "Table I: Private-scheme on-chip storage overhead",
        ["System", "OTP config", "Storage", "# of OTPs", "Per GPU"],
        table_rows,
    )


#: Paper's Table I anchor points for validation (storage KB, OTP count).
PAPER_VALUES = {
    (4, 1): (2.75, 32),
    (4, 16): (44.06, 512),
    (16, 1): (44.06, 512),
    (32, 16): (2820.0, 32768),
}


__all__ = ["run", "format_result", "storage_row", "otp_entries_per_gpu", "StorageRow", "ENTRY_BITS", "PAPER_VALUES"]
