"""Figure 26: sensitivity to the AES-GCM engine latency.

Sweeps the pad-generation latency from 10 to 40 cycles for Private,
Cached, and Ours.  The paper's finding: shrinking the engine latency moves
the overheads only a few points (Private 19.5 → 17.3 %, Cached 16.3 →
13.6 %, Ours 7.9 → 5.6 %) because the metadata bandwidth cost persists —
the motivation for attacking traffic, not just latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import default_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean

LATENCIES = (10, 20, 30, 40)
SCHEME_KEYS = ("private", "cached", "ours")


@dataclass
class AesLatencyResult:
    n_gpus: int
    latencies: tuple[int, ...]
    # (scheme, latency) -> average slowdown
    averages: dict[tuple[str, int], float] = field(default_factory=dict)


def _config(scheme_key: str, n_gpus: int, latency: int):
    if scheme_key == "ours":
        return default_config(n_gpus, scheme="dynamic", batching=True, aes_gcm_latency=latency)
    return default_config(n_gpus, scheme=scheme_key, aes_gcm_latency=latency)


def run(
    runner: ExperimentRunner | None = None,
    latencies: tuple[int, ...] = LATENCIES,
) -> AesLatencyResult:
    runner = runner or ExperimentRunner()
    configs = {
        f"{scheme}_{lat}": _config(scheme, runner.n_gpus, lat)
        for scheme in SCHEME_KEYS
        for lat in latencies
    }
    result = AesLatencyResult(n_gpus=runner.n_gpus, latencies=latencies)
    sweep = runner.sweep(configs)
    for scheme in SCHEME_KEYS:
        for lat in latencies:
            key = f"{scheme}_{lat}"
            result.averages[(scheme, lat)] = geometric_mean(
                [wl.slowdown(key) for wl in sweep]
            )
    return result


def format_result(result: AesLatencyResult) -> str:
    rows = [
        [scheme, *[fmt(result.averages[(scheme, lat)]) for lat in result.latencies]]
        for scheme in SCHEME_KEYS
    ]
    return format_table(
        f"Figure 26: average slowdown vs AES-GCM latency ({result.n_gpus} GPUs, OTP 4x)",
        ["scheme", *[f"{lat} cyc" for lat in result.latencies]],
        rows,
    )


__all__ = ["run", "format_result", "AesLatencyResult", "LATENCIES", "SCHEME_KEYS"]
