"""Fault-rate sweep: secure recovery vs. unsecure silent corruption.

Sweeps the link fault rate across schemes and surfaces the headline
robustness asymmetry: on an unreliable fabric the unsecure baseline simply
loses or consumes corrupted data (``lost_messages`` /
``corrupted_deliveries`` — nothing in the system can even tell), while the
secure schemes detect every corruption at the MsgMAC, recover every loss by
NACK/timeout-driven retransmission, and pay a measurable price for it
(retransmits, wasted OTPs, backoff cycles) that this experiment reports per
scheme.

The composite "fault rate" r splits into the four injected fault classes as
40 % drops, 40 % corruptions, 10 % wire duplicates, 10 % delay spikes —
drops and corruptions dominate because they are the classes that force
actual recovery work.

Not a paper figure: this is the reproduction's robustness harness (see
``docs/ROBUSTNESS.md``), also run at small scale as a CI smoke check via
:func:`smoke`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import SystemConfig, scheme_config
from repro.experiments.ascii_chart import hbar_chart
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean
from repro.sim.stats import FaultStats
from repro.workloads import get_workload

#: Composite fault rates swept by default (0.0 = the clean-channel anchor).
RATES = (0.0, 0.02, 0.05)

#: Schemes compared: the undefended baseline and one representative of each
#: secure protocol family (conventional, dynamic allocation, batching).
SCHEMES = ("unsecure", "private", "dynamic", "batching")


def fault_overrides(rate: float, seed: int = 0) -> dict[str, float | int]:
    """Split a composite fault rate into the per-class injector knobs."""
    return {
        "drop_rate": 0.4 * rate,
        "corrupt_rate": 0.4 * rate,
        "duplicate_rate": 0.1 * rate,
        "delay_rate": 0.1 * rate,
        "seed": seed,
    }


def fault_config(scheme: str, rate: float, n_gpus: int = 4) -> SystemConfig:
    """Scheme config at one swept fault rate (rate 0 = the pristine config,
    so its cells hash and simulate identically to a no-fault sweep)."""
    config = scheme_config(scheme, n_gpus=n_gpus)
    if rate > 0:
        config = config.with_fault(**fault_overrides(rate))
    return config


@dataclass
class FaultSweepResult:
    n_gpus: int
    rates: tuple[float, ...]
    schemes: tuple[str, ...]
    #: scheme -> rate -> geomean slowdown vs. the fault-free unsecure run
    slowdowns: dict[str, dict[float, float]] = field(default_factory=dict)
    #: scheme -> rate -> fault/recovery counters merged across workloads
    fault_totals: dict[str, dict[float, FaultStats]] = field(default_factory=dict)

    def undetected(self, scheme: str, rate: float) -> int:
        return self.fault_totals[scheme][rate].undetected


def run(
    runner: ExperimentRunner | None = None,
    rates: tuple[float, ...] = RATES,
    schemes: tuple[str, ...] = SCHEMES,
) -> FaultSweepResult:
    runner = runner or ExperimentRunner()
    grid = [
        (spec, scheme, rate)
        for spec in runner.workloads
        for scheme in schemes
        for rate in rates
    ]
    cells = [
        (spec, fault_config(scheme, rate, n_gpus=runner.n_gpus))
        for spec, scheme, rate in grid
    ]
    reports = dict(zip(grid, runner.run_many(cells)))

    result = FaultSweepResult(n_gpus=runner.n_gpus, rates=rates, schemes=schemes)
    for scheme in schemes:
        result.slowdowns[scheme] = {}
        result.fault_totals[scheme] = {}
        for rate in rates:
            ratios = []
            totals = FaultStats()
            for spec in runner.workloads:
                report = reports[(spec, scheme, rate)]
                baseline = reports[(spec, "unsecure", 0.0)]
                ratios.append(report.slowdown_vs(baseline))
                if report.fault_stats is not None:
                    totals.merge(report.fault_stats)
            result.slowdowns[scheme][rate] = geometric_mean(ratios)
            result.fault_totals[scheme][rate] = totals
    return result


def assert_no_undetected(result: FaultSweepResult) -> int:
    """Fail loudly if any secure scheme let a fault through undetected.

    Returns the number of (scheme, rate) cells checked.  This is the
    robustness contract the CI smoke job enforces: a secure scheme must
    never deliver a corrupted block or silently lose a message, and every
    injected corruption must show up as a MsgMAC rejection.
    """
    checked = 0
    for scheme in result.schemes:
        if scheme == "unsecure":
            continue
        for rate in result.rates:
            stats = result.fault_totals[scheme][rate]
            if stats.lost_messages or stats.corrupted_deliveries:
                raise AssertionError(
                    f"{scheme} @ rate {rate}: {stats.lost_messages} lost, "
                    f"{stats.corrupted_deliveries} corrupted blocks reached a device"
                )
            if stats.corruptions_detected != stats.corruptions_injected:
                raise AssertionError(
                    f"{scheme} @ rate {rate}: {stats.corruptions_injected} corruptions "
                    f"injected but only {stats.corruptions_detected} detected"
                )
            checked += 1
    return checked


def format_result(result: FaultSweepResult) -> str:
    rate_cols = [f"r={rate:g}" for rate in result.rates]
    rows = [
        [scheme, *[fmt(result.slowdowns[scheme][rate]) for rate in result.rates]]
        for scheme in result.schemes
    ]
    table = format_table(
        f"Fault sweep: slowdown vs. fault-free unsecure ({result.n_gpus} GPUs)",
        ["scheme", *rate_cols],
        rows,
    )

    worst = max(rate for rate in result.rates)
    recovery_rows = []
    for scheme in result.schemes:
        stats = result.fault_totals[scheme][worst]
        recovery_rows.append(
            [
                scheme,
                str(stats.retransmits),
                str(stats.wasted_otps),
                str(stats.timeouts_fired),
                str(stats.nacks_sent),
                str(stats.undetected),
            ]
        )
    recovery = format_table(
        f"Recovery work and silent damage at r={worst:g}",
        ["scheme", "retransmits", "wasted OTPs", "timeouts", "NACKs", "undetected"],
        recovery_rows,
    )

    chart = hbar_chart(
        f"Slowdown at r={worst:g} (| marks the fault-free baseline)",
        [(scheme, result.slowdowns[scheme][worst]) for scheme in result.schemes],
        baseline=1.0,
    )
    return "\n\n".join([table, recovery, chart])


#: Small high-traffic workload set for the CI smoke run: enough remote
#: data blocks to exercise every fault class without a long wall clock.
SMOKE_WORKLOADS = ("fir", "stencil2d", "matrixtranspose")


def smoke(
    scale: float = 0.05,
    rates: tuple[float, ...] = (0.0, 0.05),
    jobs: int | None = None,
    use_cache: bool | None = None,
) -> FaultSweepResult:
    """CI-scale fault sweep that enforces the zero-undetected contract."""
    runner = ExperimentRunner(
        scale=scale,
        workloads=[get_workload(name) for name in SMOKE_WORKLOADS],
        jobs=jobs,
        use_cache=use_cache,
    )
    result = run(runner, rates=rates)
    checked = assert_no_undetected(result)
    injected = sum(
        result.fault_totals[s][r].drops_injected
        + result.fault_totals[s][r].corruptions_injected
        for s in result.schemes
        for r in result.rates
    )
    if not injected:
        raise AssertionError("fault smoke injected no faults — sweep too small?")
    print(format_result(result))
    print(f"\nsmoke: {checked} secure cells checked, {injected} drops/corruptions injected, 0 undetected")
    return result


__all__ = [
    "RATES",
    "SCHEMES",
    "SMOKE_WORKLOADS",
    "FaultSweepResult",
    "fault_overrides",
    "fault_config",
    "run",
    "assert_no_undetected",
    "format_result",
    "smoke",
]
