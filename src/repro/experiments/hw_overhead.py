"""§IV-D hardware overhead accounting.

Analytic reproduction of the proposal's storage costs:

* Dynamic monitoring: one 64-bit counter per (peer × direction) per GPU —
  512 bits in the 4-GPU system (4 peers × 2 × 64 b).
* OTP buffers (shared with Private): 0.69–11.02 KB per GPU at 1x–16x.
* Batching MsgMAC storage: max(16, 64) MACs × peers × 8 B = 2 KB per GPU
  in the 4-GPU system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.experiments.table1_storage import ENTRY_BITS, otp_entries_per_gpu


@dataclass(frozen=True)
class HwOverhead:
    n_gpus: int
    multiplier: int
    monitor_counter_bits: int
    otp_buffer_kib_per_gpu: float
    msgmac_storage_kib_per_gpu: float

    @property
    def total_kib_per_gpu(self) -> float:
        return (
            self.monitor_counter_bits / 8 / 1024
            + self.otp_buffer_kib_per_gpu
            + self.msgmac_storage_kib_per_gpu
        )


def compute(n_gpus: int = 4, multiplier: int = 4, batch_sizes: tuple[int, int] = (16, 64)) -> HwOverhead:
    peers = n_gpus  # (n-1) GPUs + CPU
    monitor_bits = peers * 2 * 64
    otp_kib = otp_entries_per_gpu(n_gpus, multiplier) * ENTRY_BITS / 8 / 1024
    msgmac_kib = max(batch_sizes) * peers * 8 / 1024
    return HwOverhead(
        n_gpus=n_gpus,
        multiplier=multiplier,
        monitor_counter_bits=monitor_bits,
        otp_buffer_kib_per_gpu=otp_kib,
        msgmac_storage_kib_per_gpu=msgmac_kib,
    )


def format_result(overheads: list[HwOverhead]) -> str:
    rows = [
        [
            f"{o.n_gpus} GPUs",
            f"{o.multiplier}x",
            f"{o.monitor_counter_bits} b",
            f"{o.otp_buffer_kib_per_gpu:.2f} KB",
            f"{o.msgmac_storage_kib_per_gpu:.2f} KB",
            f"{o.total_kib_per_gpu:.2f} KB",
        ]
        for o in overheads
    ]
    return format_table(
        "Hardware overhead per GPU (§IV-D)",
        ["System", "OTP", "monitor ctrs", "OTP buffers", "MsgMAC store", "total"],
        rows,
    )


__all__ = ["compute", "format_result", "HwOverhead"]
