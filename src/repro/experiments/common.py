"""Shared infrastructure for the experiment harnesses.

:class:`ExperimentRunner` runs (workload × configuration) simulations with
memoization, so a sweep that reuses the unsecure baseline (every figure
normalizes against it) only simulates it once per workload.  Formatting
helpers render the paper-style text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import SystemConfig, scheme_config
from repro.system import SimulationReport, run_workload
from repro.workloads import WorkloadSpec, all_workloads


def geometric_mean(values: list[float]) -> float:
    """The paper reports averages of normalized times; geomean is the
    appropriate aggregate for ratios."""
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


@dataclass
class WorkloadResult:
    """One workload's reports across the swept configurations."""

    spec: WorkloadSpec
    baseline: SimulationReport
    by_config: dict[str, SimulationReport] = field(default_factory=dict)

    def slowdown(self, config_key: str) -> float:
        return self.by_config[config_key].slowdown_vs(self.baseline)

    def traffic_ratio(self, config_key: str) -> float:
        return self.by_config[config_key].traffic_ratio_vs(self.baseline)


class ExperimentRunner:
    """Runs and caches simulations for experiment sweeps."""

    def __init__(
        self,
        n_gpus: int = 4,
        seed: int = 1,
        scale: float = 1.0,
        workloads: list[WorkloadSpec] | None = None,
    ) -> None:
        self.n_gpus = n_gpus
        self.seed = seed
        self.scale = scale
        self.workloads = workloads if workloads is not None else all_workloads()
        self._cache: dict[tuple, SimulationReport] = {}

    # ------------------------------------------------------------------
    # Simulation with memoization
    # ------------------------------------------------------------------
    def run(self, spec: WorkloadSpec, config: SystemConfig) -> SimulationReport:
        # SystemConfig is a tree of frozen dataclasses, so the whole
        # configuration is hashable — any swept field invalidates the memo
        key = (spec.name, self.seed, self.scale, config)
        report = self._cache.get(key)
        if report is None:
            trace = spec.generate(
                n_gpus=config.n_gpus, seed=self.seed, scale=self.scale
            )
            report = run_workload(config, trace)
            self._cache[key] = report
        return report

    def baseline(self, spec: WorkloadSpec) -> SimulationReport:
        return self.run(spec, scheme_config("unsecure", n_gpus=self.n_gpus))

    def sweep(self, configs: dict[str, SystemConfig]) -> list[WorkloadResult]:
        """Run every workload under every named configuration."""
        results = []
        for spec in self.workloads:
            result = WorkloadResult(spec=spec, baseline=self.baseline(spec))
            for key, config in configs.items():
                result.by_config[key] = self.run(spec, config)
            results.append(result)
        return results


def multi_seed_slowdowns(
    configs: dict[str, SystemConfig],
    seeds: tuple[int, ...] = (1, 2, 3),
    n_gpus: int = 4,
    scale: float = 1.0,
    workloads: list[WorkloadSpec] | None = None,
) -> dict[str, float]:
    """Average slowdown per configuration across seeds and workloads.

    Structural workloads are seed-deterministic, but the randomized ones
    (pagerank, spmv) and the lane-jitter offsets vary; averaging across
    seeds tightens the comparison of close configurations.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values: dict[str, list[float]] = {key: [] for key in configs}
    for seed in seeds:
        runner = ExperimentRunner(n_gpus=n_gpus, seed=seed, scale=scale, workloads=workloads)
        for wl in runner.sweep(configs):
            for key in configs:
                values[key].append(wl.slowdown(key))
    return {key: geometric_mean(vals) for key, vals in values.items()}


# ---------------------------------------------------------------------------
# Text-table rendering
# ---------------------------------------------------------------------------
def format_table(
    title: str,
    columns: list[str],
    rows: list[list[str]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


__all__ = [
    "ExperimentRunner",
    "multi_seed_slowdowns",
    "WorkloadResult",
    "geometric_mean",
    "format_table",
    "fmt",
]
