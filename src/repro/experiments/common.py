"""Shared infrastructure for the experiment harnesses.

:class:`ExperimentRunner` runs (workload × configuration) simulations on
top of :mod:`repro.runner`: cells are deduplicated, served from the
persistent result cache when available, and fanned out over worker
processes when ``jobs > 1``.  An in-memory memo preserves object identity
within a runner (a sweep that reuses the unsecure baseline gets the *same*
report object back).  Formatting helpers render the paper-style text
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, fsum, log

from repro.configs import SystemConfig, scheme_config
from repro.runner import SweepJob, SweepRunner, default_cache
from repro.system import SimulationReport
from repro.workloads import WorkloadSpec, all_workloads


def geometric_mean(values: list[float]) -> float:
    """The paper reports averages of normalized times; geomean is the
    appropriate aggregate for ratios.

    Computed in log space — a running float product under/overflows for
    long ratio lists (17 workloads × 6 configs × 3 seeds is already 300+
    factors), while a compensated sum of logs is stable at any length.
    """
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return exp(fsum(log(v) for v in values) / len(values))


@dataclass
class WorkloadResult:
    """One workload's reports across the swept configurations."""

    spec: WorkloadSpec
    baseline: SimulationReport
    by_config: dict[str, SimulationReport] = field(default_factory=dict)

    def slowdown(self, config_key: str) -> float:
        return self.by_config[config_key].slowdown_vs(self.baseline)

    def traffic_ratio(self, config_key: str) -> float:
        return self.by_config[config_key].traffic_ratio_vs(self.baseline)


class ExperimentRunner:
    """Runs and caches simulations for experiment sweeps.

    ``jobs`` worker processes execute independent cells concurrently
    (default: the ``REPRO_JOBS`` environment variable, else serial).  The
    persistent cache under ``cache_dir`` (default ``results/.cache``; see
    :func:`repro.runner.default_cache`) survives across processes, so a
    rerun of any figure only simulates cells it has never seen; pass
    ``use_cache=False`` — or set ``REPRO_NO_CACHE`` — to disable it.
    ``fleet_addr`` distributes the sweep over a fleet coordinator
    (``repro-sim experiment --fleet``; see ``docs/FLEET.md``).
    """

    def __init__(
        self,
        n_gpus: int = 4,
        seed: int = 1,
        scale: float = 1.0,
        workloads: list[WorkloadSpec] | None = None,
        jobs: int | None = None,
        cache_dir: str | None = None,
        use_cache: bool | None = None,
        fleet_addr: str | None = None,
        fleet_key: bytes | None = None,
    ) -> None:
        self.n_gpus = n_gpus
        self.seed = seed
        self.scale = scale
        self.workloads = workloads if workloads is not None else all_workloads()
        self.sweeper = SweepRunner(
            jobs=jobs,
            cache=default_cache(cache_dir, use_cache),
            mode="fleet" if fleet_addr else "auto",
            fleet_addr=fleet_addr,
            fleet_key=fleet_key,
        )
        self._cache: dict[tuple, SimulationReport] = {}

    # ------------------------------------------------------------------
    # Simulation with memoization
    # ------------------------------------------------------------------
    def _job(self, spec: WorkloadSpec, config: SystemConfig) -> SweepJob:
        return SweepJob(spec=spec, config=config, seed=self.seed, scale=self.scale)

    def _memo_key(self, spec: WorkloadSpec, config: SystemConfig) -> tuple:
        # SystemConfig is a tree of frozen dataclasses, so the whole
        # configuration is hashable — any swept field invalidates the memo
        return (spec.name, self.seed, self.scale, config)

    def run(self, spec: WorkloadSpec, config: SystemConfig) -> SimulationReport:
        return self.run_many([(spec, config)])[0]

    def run_many(
        self, cells: list[tuple[WorkloadSpec, SystemConfig]]
    ) -> list[SimulationReport]:
        """Run a batch of cells; memo misses go to the sweeper *together*,
        so they share one process-pool fan-out and one cache pass."""
        missing = [
            (spec, config)
            for spec, config in cells
            if self._memo_key(spec, config) not in self._cache
        ]
        if missing:
            reports = self.sweeper.run_jobs([self._job(s, c) for s, c in missing])
            for (spec, config), report in zip(missing, reports):
                # setdefault keeps the first object if a duplicate cell
                # appeared twice in one batch — identity stays stable
                self._cache.setdefault(self._memo_key(spec, config), report)
        return [self._cache[self._memo_key(spec, config)] for spec, config in cells]

    def baseline(self, spec: WorkloadSpec) -> SimulationReport:
        return self.run(spec, scheme_config("unsecure", n_gpus=self.n_gpus))

    def sweep(self, configs: dict[str, SystemConfig]) -> list[WorkloadResult]:
        """Run every workload under every named configuration.

        The whole grid — baselines included — is submitted as one batch, so
        with ``jobs > 1`` independent cells run concurrently.
        """
        unsecure = scheme_config("unsecure", n_gpus=self.n_gpus)
        cells: list[tuple[WorkloadSpec, SystemConfig]] = []
        for spec in self.workloads:
            cells.append((spec, unsecure))
            for config in configs.values():
                cells.append((spec, config))
        self.run_many(cells)

        results = []
        for spec in self.workloads:
            result = WorkloadResult(spec=spec, baseline=self.run(spec, unsecure))
            for key, config in configs.items():
                result.by_config[key] = self.run(spec, config)
            results.append(result)
        return results


def multi_seed_slowdowns(
    configs: dict[str, SystemConfig],
    seeds: tuple[int, ...] = (1, 2, 3),
    n_gpus: int = 4,
    scale: float = 1.0,
    workloads: list[WorkloadSpec] | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
) -> dict[str, float]:
    """Average slowdown per configuration across seeds and workloads.

    Structural workloads are seed-deterministic, but the randomized ones
    (pagerank, spmv) and the lane-jitter offsets vary; averaging across
    seeds tightens the comparison of close configurations.  The full
    seeds × workloads × configs grid is one sweep batch, so every cell —
    across seeds too — can run in parallel.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if workloads is None:
        workloads = all_workloads()
    unsecure = scheme_config("unsecure", n_gpus=n_gpus)
    sweeper = SweepRunner(jobs=jobs, cache=default_cache(cache_dir, use_cache))

    grid: list[SweepJob] = []
    for seed in seeds:
        for spec in workloads:
            grid.append(SweepJob(spec=spec, config=unsecure, seed=seed, scale=scale))
            for config in configs.values():
                grid.append(SweepJob(spec=spec, config=config, seed=seed, scale=scale))
    reports = iter(sweeper.run_jobs(grid))

    values: dict[str, list[float]] = {key: [] for key in configs}
    for _seed in seeds:
        for _spec in workloads:
            baseline = next(reports)
            for key in configs:
                values[key].append(next(reports).slowdown_vs(baseline))
    return {key: geometric_mean(vals) for key, vals in values.items()}


# ---------------------------------------------------------------------------
# Text-table rendering
# ---------------------------------------------------------------------------
def format_table(
    title: str,
    columns: list[str],
    rows: list[list[str]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


__all__ = [
    "ExperimentRunner",
    "multi_seed_slowdowns",
    "WorkloadResult",
    "geometric_mean",
    "format_table",
    "fmt",
]
