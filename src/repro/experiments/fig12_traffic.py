"""Figures 12 and 23: interconnect traffic ratios.

Fig. 12 measures how much extra traffic the security metadata adds under
Private (paper: +36.5 % on average).  Fig. 23 compares Private, Cached, and
Ours (Dynamic + Batching), where batching removes ~20 % of the secured
traffic (paper: −20.2 % vs Private, −20.0 % vs Cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean


@dataclass
class TrafficResult:
    n_gpus: int
    schemes: tuple[str, ...]
    # workload -> scheme -> traffic ratio vs unsecure
    ratios: dict[str, dict[str, float]] = field(default_factory=dict)
    # workload -> scheme -> metadata share of total bytes
    meta_share: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, scheme: str) -> float:
        return geometric_mean([per_wl[scheme] for per_wl in self.ratios.values()])


def run(
    runner: ExperimentRunner | None = None,
    schemes: tuple[str, ...] = ("private", "cached", "batching"),
) -> TrafficResult:
    runner = runner or ExperimentRunner()
    configs = {s: scheme_config(s, n_gpus=runner.n_gpus) for s in schemes}
    result = TrafficResult(n_gpus=runner.n_gpus, schemes=schemes)
    for wl in runner.sweep(configs):
        result.ratios[wl.spec.abbr] = {s: wl.traffic_ratio(s) for s in schemes}
        result.meta_share[wl.spec.abbr] = {
            s: (
                wl.by_config[s].meta_traffic_bytes / wl.by_config[s].traffic_bytes
                if wl.by_config[s].traffic_bytes
                else 0.0
            )
            for s in schemes
        }
    return result


def format_result(result: TrafficResult) -> str:
    rows = [
        [abbr, *[fmt(per_wl[s]) for s in result.schemes]]
        for abbr, per_wl in result.ratios.items()
    ]
    rows.append(["average", *[fmt(result.average(s)) for s in result.schemes]])
    return format_table(
        f"Figures 12/23: traffic vs unsecure ({result.n_gpus} GPUs, OTP 4x)",
        ["workload", *result.schemes],
        rows,
    )


__all__ = ["run", "format_result", "TrafficResult"]
