"""Collective-communication sweep: schemes × NCCL-style collectives.

Production multi-GPU traffic is dominated by collectives (DDP training,
sharded inference), not by Table IV kernels; this harness prices the
secure-channel schemes on exactly that traffic.  For every collective in
the ``collective`` registry class (ring/tree all-reduce, all-gather,
reduce-scatter, broadcast, 2D halo exchange) it reports

* **slowdown** vs. the unsecure baseline per scheme, and
* **traffic amplification** plus the security-metadata share of the wire
  bytes — the quantity batching exists to compress.

The headline the sweep demonstrates: the paper's full proposal
(Dynamic + batching) prices every collective at or below the conventional
Private scheme at equal OTP storage, with the biggest wins on the
bulk-synchronous chunked collectives whose 16-block bursts batching
converts into one MsgMAC + one ACK each.

Not a paper figure — collectives are this reproduction's production-traffic
extension (see ``docs/WORKLOADS.md``).  Run from the CLI as
``repro-sim experiment collectives``; :func:`smoke` is the CI entry that
enforces the Dynamic+Batch ≤ Private contract at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.ascii_chart import hbar_chart
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean
from repro.workloads import all_collectives

#: Schemes compared, conventional → the paper's full proposal.
SCHEMES = ("private", "cached", "dynamic", "batching")


@dataclass
class CollectiveSweepResult:
    n_gpus: int
    schemes: tuple[str, ...]
    collectives: tuple[str, ...]
    #: scheme -> collective -> slowdown vs. the unsecure baseline
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)
    #: scheme -> collective -> traffic ratio vs. the unsecure baseline
    traffic: dict[str, dict[str, float]] = field(default_factory=dict)
    #: scheme -> collective -> metadata share of total wire bytes
    meta_share: dict[str, dict[str, float]] = field(default_factory=dict)

    def geomean_slowdown(self, scheme: str) -> float:
        return geometric_mean(list(self.slowdowns[scheme].values()))

    def geomean_traffic(self, scheme: str) -> float:
        return geometric_mean(list(self.traffic[scheme].values()))


def run(
    runner: ExperimentRunner | None = None,
    schemes: tuple[str, ...] = SCHEMES,
) -> CollectiveSweepResult:
    """Sweep every collective under every scheme (plus the baseline).

    The runner supplies the execution layer (seed, scale, jobs, cache);
    the workload set is always the full ``collective`` registry class.
    """
    runner = runner or ExperimentRunner()
    specs = all_collectives()
    configs = {s: scheme_config(s, n_gpus=runner.n_gpus) for s in schemes}
    unsecure = scheme_config("unsecure", n_gpus=runner.n_gpus)

    cells = [(spec, unsecure) for spec in specs]
    cells += [(spec, cfg) for spec in specs for cfg in configs.values()]
    runner.run_many(cells)  # one batch: every cell fans out together

    result = CollectiveSweepResult(
        n_gpus=runner.n_gpus,
        schemes=schemes,
        collectives=tuple(spec.name for spec in specs),
    )
    for scheme, cfg in configs.items():
        result.slowdowns[scheme] = {}
        result.traffic[scheme] = {}
        result.meta_share[scheme] = {}
        for spec in specs:
            baseline = runner.run(spec, unsecure)
            report = runner.run(spec, cfg)
            result.slowdowns[scheme][spec.name] = report.slowdown_vs(baseline)
            result.traffic[scheme][spec.name] = report.traffic_ratio_vs(baseline)
            result.meta_share[scheme][spec.name] = (
                report.meta_traffic_bytes / report.traffic_bytes
                if report.traffic_bytes
                else 0.0
            )
    return result


def format_result(result: CollectiveSweepResult) -> str:
    columns = ["scheme", *result.collectives, "geomean"]
    slowdown_rows = [
        [
            scheme,
            *[fmt(result.slowdowns[scheme][c]) for c in result.collectives],
            fmt(result.geomean_slowdown(scheme)),
        ]
        for scheme in result.schemes
    ]
    slowdown_table = format_table(
        f"Collectives: slowdown vs. unsecure ({result.n_gpus} GPUs)",
        columns,
        slowdown_rows,
    )

    traffic_rows = [
        [
            scheme,
            *[
                f"{fmt(result.traffic[scheme][c], 2)} ({result.meta_share[scheme][c]:.0%})"
                for c in result.collectives
            ],
            fmt(result.geomean_traffic(scheme), 2),
        ]
        for scheme in result.schemes
    ]
    traffic_table = format_table(
        "Traffic amplification vs. unsecure (metadata share of wire bytes)",
        columns,
        traffic_rows,
    )

    chart = hbar_chart(
        "Geomean slowdown across collectives (| marks the unsecure baseline)",
        [(scheme, result.geomean_slowdown(scheme)) for scheme in result.schemes],
        baseline=1.0,
    )
    return "\n\n".join([slowdown_table, traffic_table, chart])


def assert_batching_wins(result: CollectiveSweepResult) -> int:
    """Enforce the collectives contract: Dynamic+Batch ≤ Private everywhere.

    At equal OTP storage the full proposal must not price any collective
    above the conventional per-message protocol.  Returns the number of
    collectives checked; raises AssertionError naming the violator.
    """
    for required in ("private", "batching"):
        if required not in result.schemes:
            raise AssertionError(f"contract needs scheme {required!r} in the sweep")
    checked = 0
    for name in result.collectives:
        private = result.slowdowns["private"][name]
        ours = result.slowdowns["batching"][name]
        if ours > private + 1e-9:
            raise AssertionError(
                f"{name}: Dynamic+Batch slowdown {ours:.3f} exceeds Private {private:.3f}"
            )
        checked += 1
    return checked


def smoke(
    scale: float = 0.25,
    jobs: int | None = None,
    use_cache: bool | None = None,
) -> CollectiveSweepResult:
    """CI-scale collectives sweep enforcing Dynamic+Batch ≤ Private.

    Scale floors at 0.25: below that the traces span too few of the
    dynamic allocator's T=1000-cycle intervals for the EWMA statistics to
    settle (same floor the benchmarks apply, see EXPERIMENTS.md).
    """
    runner = ExperimentRunner(scale=max(scale, 0.25), jobs=jobs, use_cache=use_cache)
    result = run(runner, schemes=("private", "batching"))
    checked = assert_batching_wins(result)
    print(format_result(result))
    print(f"\nsmoke: {checked} collectives checked, Dynamic+Batch <= Private on all")
    return result


__all__ = [
    "SCHEMES",
    "CollectiveSweepResult",
    "run",
    "format_result",
    "assert_batching_wins",
    "smoke",
]
