"""Figure 11: cumulative overhead breakdown under Private (OTP 4x).

Two configurations isolate the paper's two cost sources:

* **+SecureCommu** — authenticated encryption latencies apply but security
  metadata occupies no link bandwidth (``count_metadata=False``);
* **+Traffic**    — the full protocol including metadata bytes and ACKs.

Paper anchors: +SecureCommu averages 8.2 % overhead; +Traffic lifts it to
19.5 % (an 11.3-point bandwidth contribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import default_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean

STAGES = ("secure_commu", "traffic")


@dataclass
class OverheadBreakdownResult:
    n_gpus: int
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, stage: str) -> float:
        return geometric_mean([per_wl[stage] for per_wl in self.slowdowns.values()])


def run(runner: ExperimentRunner | None = None) -> OverheadBreakdownResult:
    runner = runner or ExperimentRunner()
    configs = {
        "secure_commu": default_config(runner.n_gpus, scheme="private", count_metadata=False),
        "traffic": default_config(runner.n_gpus, scheme="private", count_metadata=True),
    }
    result = OverheadBreakdownResult(n_gpus=runner.n_gpus)
    for wl in runner.sweep(configs):
        result.slowdowns[wl.spec.abbr] = {s: wl.slowdown(s) for s in STAGES}
    return result


def format_result(result: OverheadBreakdownResult) -> str:
    rows = [
        [abbr, fmt(per_wl["secure_commu"]), fmt(per_wl["traffic"])]
        for abbr, per_wl in result.slowdowns.items()
    ]
    rows.append(
        ["average", fmt(result.average("secure_commu")), fmt(result.average("traffic"))]
    )
    return format_table(
        f"Figure 11: cumulative overheads, Private OTP 4x ({result.n_gpus} GPUs)",
        ["workload", "+SecureCommu", "+Traffic"],
        rows,
    )


__all__ = ["run", "format_result", "OverheadBreakdownResult"]
