"""Figures 13 and 14: communication-pattern timelines for one GPU.

Fig. 13: the send-vs-receive split of GPU 1's messages over execution,
per monitoring interval.  Fig. 14: the destination decomposition of GPU 1's
sends over the same intervals.  Both are measured on the unsecure system
running matrix multiplication, as in the paper's motivation study — the
point is that the ratios drift over the run, which is what the Dynamic
allocator exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, format_table
from repro.workloads import get_workload


@dataclass
class TimelineResult:
    workload: str
    gpu: int
    interval: int
    n_buckets: int
    send_fraction: list[float] = field(default_factory=list)  # Fig 13
    dest_fractions: dict[str, list[float]] = field(default_factory=dict)  # Fig 14


def run(
    runner: ExperimentRunner | None = None,
    workload: str = "matrixmultiplication",
    gpu: int = 1,
) -> TimelineResult:
    runner = runner or ExperimentRunner()
    spec = get_workload(workload)
    report = runner.run(spec, scheme_config("unsecure", n_gpus=runner.n_gpus))
    timeline = report.timelines[gpu]
    n_buckets = timeline.n_buckets()
    send = timeline.series("send", n_buckets)
    recv = timeline.series("recv", n_buckets)
    result = TimelineResult(
        workload=spec.name, gpu=gpu, interval=timeline.interval, n_buckets=n_buckets
    )
    for s, r in zip(send, recv):
        total = s + r
        result.send_fraction.append(s / total if total else 0.0)
    dest_channels = [c for c in timeline.channels() if c.startswith("to")]
    dest_totals = [
        sum(timeline.series(c, n_buckets)[i] for c in dest_channels)
        for i in range(n_buckets)
    ]
    for chan in dest_channels:
        series = timeline.series(chan, n_buckets)
        result.dest_fractions[chan] = [
            v / t if t else 0.0 for v, t in zip(series, dest_totals)
        ]
    return result


def format_result(result: TimelineResult) -> str:
    dests = sorted(result.dest_fractions)
    rows = []
    for i in range(result.n_buckets):
        rows.append(
            [
                f"[{i * result.interval}, {(i + 1) * result.interval})",
                f"{result.send_fraction[i]:.2f}",
                *[f"{result.dest_fractions[d][i]:.2f}" for d in dests],
            ]
        )
    labels = ["toCPU" if d == "to0" else f"toGPU{d[2:]}" for d in dests]
    return format_table(
        f"Figures 13/14: GPU {result.gpu} communication timeline, {result.workload} "
        f"(unsecure, interval={result.interval} cycles)",
        ["interval", "send frac", *labels],
        rows,
    )


def pattern_drift(result: TimelineResult) -> float:
    """Total variation of the destination mix across intervals.

    The paper's observation is qualitative ("ratios change over the
    execution"); this scalar quantifies it: the mean L1 distance between
    consecutive intervals' destination distributions.
    """
    dests = sorted(result.dest_fractions)
    if result.n_buckets < 2 or not dests:
        return 0.0
    drift = 0.0
    for i in range(1, result.n_buckets):
        drift += sum(
            abs(result.dest_fractions[d][i] - result.dest_fractions[d][i - 1])
            for d in dests
        )
    return drift / (result.n_buckets - 1)


__all__ = ["run", "format_result", "pattern_drift", "TimelineResult"]
