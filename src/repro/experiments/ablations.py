"""Ablation studies on the proposal's design choices.

Beyond the paper's own sweeps (Figs 8/26), these isolate each knob the
design fixes by fiat so its contribution is measurable:

* ``batch_size_sweep``   — n ∈ {4..64}; the paper picks 16 from Fig. 15.
* ``batch_timeout_sweep``— how long a partial batch may wait for company.
* ``interval_sweep``     — the monitoring period T (Table III: 1000).
* ``ewma_sweep``         — α/β update rates (Table III: 0.9 / 0.5).
* ``ideal_bound``        — the Ideal (unbounded-pads) scheme, splitting
  residual overhead into "pad misses" vs "metadata bandwidth": the gap
  Ideal→unsecure is what only batching can recover, the gap scheme→Ideal
  is what buffer management can.
* ``migration_threshold_sweep`` — the access-counter threshold trading
  direct-access traffic against bulk page moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.configs import LinkConfig, MetadataConfig, MigrationConfig, default_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean


@dataclass
class SweepResult:
    """Average slowdown per swept value."""

    parameter: str
    n_gpus: int
    averages: dict = field(default_factory=dict)  # value -> avg slowdown

    def best(self):
        return min(self.averages, key=self.averages.get)


def _average_slowdown(runner: ExperimentRunner, config) -> float:
    values = []
    for spec in runner.workloads:
        baseline = runner.baseline(spec)
        values.append(runner.run(spec, config).slowdown_vs(baseline))
    return geometric_mean(values)


# ---------------------------------------------------------------------------
# Batching knobs
# ---------------------------------------------------------------------------
def batch_size_sweep(
    runner: ExperimentRunner | None = None,
    sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
) -> SweepResult:
    runner = runner or ExperimentRunner()
    result = SweepResult("batch_size", runner.n_gpus)
    for n in sizes:
        config = default_config(
            runner.n_gpus, scheme="dynamic", batching=True, batch_size=n
        )
        result.averages[n] = _average_slowdown(runner, config)
    return result


def batch_timeout_sweep(
    runner: ExperimentRunner | None = None,
    timeouts: tuple[int, ...] = (40, 160, 640, 2560),
) -> SweepResult:
    runner = runner or ExperimentRunner()
    result = SweepResult("batch_timeout", runner.n_gpus)
    for t in timeouts:
        config = default_config(
            runner.n_gpus, scheme="dynamic", batching=True, batch_timeout=t
        )
        result.averages[t] = _average_slowdown(runner, config)
    return result


# ---------------------------------------------------------------------------
# Dynamic-allocator knobs
# ---------------------------------------------------------------------------
def interval_sweep(
    runner: ExperimentRunner | None = None,
    intervals: tuple[int, ...] = (250, 500, 1000, 2000, 4000),
) -> SweepResult:
    runner = runner or ExperimentRunner()
    result = SweepResult("interval_T", runner.n_gpus)
    for t in intervals:
        config = default_config(runner.n_gpus, scheme="dynamic", interval=t)
        result.averages[t] = _average_slowdown(runner, config)
    return result


def ewma_sweep(
    runner: ExperimentRunner | None = None,
    alphas: tuple[float, ...] = (0.5, 0.9),
    betas: tuple[float, ...] = (0.25, 0.5, 0.9),
) -> SweepResult:
    runner = runner or ExperimentRunner()
    result = SweepResult("alpha/beta", runner.n_gpus)
    for alpha in alphas:
        for beta in betas:
            config = default_config(
                runner.n_gpus, scheme="dynamic", alpha=alpha, beta=beta
            )
            result.averages[(alpha, beta)] = _average_slowdown(runner, config)
    return result


# ---------------------------------------------------------------------------
# Bounds decomposition
# ---------------------------------------------------------------------------
@dataclass
class IdealBoundResult:
    n_gpus: int
    # workload -> {"dynamic", "ideal", "ideal_batched"} -> slowdown
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, key: str) -> float:
        return geometric_mean([v[key] for v in self.slowdowns.values()])


def ideal_bound(runner: ExperimentRunner | None = None) -> IdealBoundResult:
    runner = runner or ExperimentRunner()
    configs = {
        "dynamic": default_config(runner.n_gpus, scheme="dynamic"),
        "ideal": default_config(runner.n_gpus, scheme="ideal"),
        "ideal_batched": default_config(runner.n_gpus, scheme="ideal", batching=True),
    }
    result = IdealBoundResult(n_gpus=runner.n_gpus)
    for wl in runner.sweep(configs):
        result.slowdowns[wl.spec.abbr] = {k: wl.slowdown(k) for k in configs}
    return result


# ---------------------------------------------------------------------------
# Migration policy
# ---------------------------------------------------------------------------
def migration_threshold_sweep(
    runner: ExperimentRunner | None = None,
    thresholds: tuple[int, ...] = (4, 8, 16, 32),
) -> SweepResult:
    runner = runner or ExperimentRunner()
    result = SweepResult("migration_threshold", runner.n_gpus)
    for threshold in thresholds:
        config = replace(
            default_config(runner.n_gpus, scheme="dynamic", batching=True),
            migration=MigrationConfig(threshold=threshold),
        )
        result.averages[threshold] = _average_slowdown(runner, config)
    return result


# ---------------------------------------------------------------------------
# Fabric organization (beyond the paper: ring / switch alternatives)
# ---------------------------------------------------------------------------
def fabric_sweep(
    runner: ExperimentRunner | None = None,
    fabrics: tuple[str, ...] = ("p2p", "switch", "ring"),
) -> SweepResult:
    """Security overhead of Ours under different GPU-fabric organizations.

    Each fabric is normalized to the *unsecure system on the same fabric*,
    so the sweep isolates how fabric contention amplifies the security
    costs (metadata bytes hurt most where links are shared).
    """
    runner = runner or ExperimentRunner()
    result = SweepResult("fabric", runner.n_gpus)
    for fabric in fabrics:
        link = LinkConfig(fabric=fabric)
        secured = replace(
            default_config(runner.n_gpus, scheme="dynamic", batching=True), link=link
        )
        unsecured = replace(default_config(runner.n_gpus), link=link)
        ratios = []
        for spec in runner.workloads:
            base = runner.run(spec, unsecured)
            ratios.append(runner.run(spec, secured).slowdown_vs(base))
        result.averages[fabric] = geometric_mean(ratios)
    return result


# ---------------------------------------------------------------------------
# Protocol extensions beyond the paper
# ---------------------------------------------------------------------------
@dataclass
class ExtensionsResult:
    n_gpus: int
    # key -> (avg slowdown, avg traffic ratio)
    averages: dict[str, tuple[float, float]] = field(default_factory=dict)


def extensions_study(runner: ExperimentRunner | None = None) -> ExtensionsResult:
    """Cost/benefit of two optional protocol extensions.

    * ``compressed_ctr``   — 2 B delta counters instead of 8 B MsgCTRs
      (Common-Counters-style), stacking with batching;
    * ``protect_requests`` — control messages also encrypted+authenticated
      (the oblivious-communication direction of [34]), priced on top of
      the paper's proposal.
    """
    runner = runner or ExperimentRunner()
    base = default_config(runner.n_gpus, scheme="dynamic", batching=True)
    compressed = replace(
        base,
        security=replace(
            base.security, metadata=MetadataConfig(compressed_counters=True)
        ),
    )
    protected = replace(base, security=replace(base.security, protect_requests=True))
    configs = {
        "ours": base,
        "ours+compressed_ctr": compressed,
        "ours+protect_requests": protected,
    }
    result = ExtensionsResult(n_gpus=runner.n_gpus)
    sweep = runner.sweep(configs)
    for key in configs:
        result.averages[key] = (
            geometric_mean([wl.slowdown(key) for wl in sweep]),
            geometric_mean([wl.traffic_ratio(key) for wl in sweep]),
        )
    return result


def format_extensions(result: ExtensionsResult) -> str:
    rows = [
        [key, fmt(slow), fmt(traffic)]
        for key, (slow, traffic) in result.averages.items()
    ]
    return format_table(
        f"Extensions: protocol variants beyond the paper ({result.n_gpus} GPUs)",
        ["variant", "avg slowdown", "avg traffic"],
        rows,
    )


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------
def format_sweep(result: SweepResult) -> str:
    rows = [[str(value), fmt(avg)] for value, avg in result.averages.items()]
    return format_table(
        f"Ablation: {result.parameter} ({result.n_gpus} GPUs, avg slowdown)",
        [result.parameter, "avg slowdown"],
        rows,
    )


def format_ideal_bound(result: IdealBoundResult) -> str:
    rows = [
        [abbr, fmt(v["dynamic"]), fmt(v["ideal"]), fmt(v["ideal_batched"])]
        for abbr, v in result.slowdowns.items()
    ]
    rows.append(
        [
            "average",
            fmt(result.average("dynamic")),
            fmt(result.average("ideal")),
            fmt(result.average("ideal_batched")),
        ]
    )
    return format_table(
        f"Ablation: overhead decomposition ({result.n_gpus} GPUs) — "
        "Ideal isolates the metadata-bandwidth floor",
        ["workload", "Dynamic", "Ideal pads", "Ideal+batch"],
        rows,
    )


__all__ = [
    "SweepResult",
    "IdealBoundResult",
    "ExtensionsResult",
    "extensions_study",
    "format_extensions",
    "batch_size_sweep",
    "batch_timeout_sweep",
    "interval_sweep",
    "ewma_sweep",
    "ideal_bound",
    "fabric_sweep",
    "migration_threshold_sweep",
    "format_sweep",
    "format_ideal_bound",
]
