"""Figure 21: the headline 4-GPU comparison.

Private (OTP 4x), Private (OTP 16x), Cached (OTP 4x), Dynamic (OTP 4x),
and Dynamic+Batching (OTP 4x), all normalized to the unsecure system.

Paper anchors (average overheads): Private 4x 19.5 %, Private 16x 14.0 %,
Cached 16.3 %, Dynamic 14.7 %, Batching 7.9 %.  The shapes that must hold:
Batching < Dynamic < Private 4x, Batching < Private 16x (more buffers
cannot fix the metadata bandwidth), and the worst workloads are the
high-RPKI communication-bound ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import default_config, scheme_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean

CONFIG_KEYS = ("private_4x", "private_16x", "cached_4x", "dynamic_4x", "batching_4x")


@dataclass
class MainResult:
    n_gpus: int
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, key: str) -> float:
        return geometric_mean([per_wl[key] for per_wl in self.slowdowns.values()])

    def improvement_over(self, ours: str, prior: str) -> float:
        """Average speedup of ``ours`` relative to ``prior`` (paper's
        'performance improvement' metric)."""
        return self.average(prior) / self.average(ours) - 1.0


def build_configs(n_gpus: int) -> dict:
    return {
        "private_4x": scheme_config("private", n_gpus=n_gpus, otp_multiplier=4),
        "private_16x": scheme_config("private", n_gpus=n_gpus, otp_multiplier=16),
        "cached_4x": scheme_config("cached", n_gpus=n_gpus, otp_multiplier=4),
        "dynamic_4x": scheme_config("dynamic", n_gpus=n_gpus, otp_multiplier=4),
        "batching_4x": default_config(n_gpus, scheme="dynamic", batching=True),
    }


def run(runner: ExperimentRunner | None = None) -> MainResult:
    runner = runner or ExperimentRunner()
    result = MainResult(n_gpus=runner.n_gpus)
    for wl in runner.sweep(build_configs(runner.n_gpus)):
        result.slowdowns[wl.spec.abbr] = {k: wl.slowdown(k) for k in CONFIG_KEYS}
    return result


def format_result(result: MainResult) -> str:
    rows = [
        [abbr, *[fmt(per_wl[k]) for k in CONFIG_KEYS]]
        for abbr, per_wl in result.slowdowns.items()
    ]
    rows.append(["average", *[fmt(result.average(k)) for k in CONFIG_KEYS]])
    summary = (
        f"Batching improves {result.improvement_over('batching_4x', 'private_4x'):+.1%} "
        f"over Private 4x, {result.improvement_over('batching_4x', 'cached_4x'):+.1%} "
        "over Cached 4x"
    )
    table = format_table(
        f"Figure 21: execution time, {result.n_gpus} GPUs (normalized to unsecure)",
        ["workload", "Priv 4x", "Priv 16x", "Cached 4x", "+Dynamic", "+Batching"],
        rows,
    )
    from repro.experiments.ascii_chart import hbar_chart

    chart = hbar_chart(
        "average normalized execution time",
        [(k, result.average(k)) for k in CONFIG_KEYS],
        baseline=1.0,
    )
    return f"{table}\n{summary}\n\n{chart}"


__all__ = ["run", "format_result", "build_configs", "MainResult", "CONFIG_KEYS"]
