"""Figure 9: execution time of the prior OTP management schemes.

Private / Shared / Cached at OTP 4x in a 4-GPU system, normalized to the
unsecure baseline.  Paper anchors: 19.5 % / 166.3 % / 16.3 % average
degradation, with Private and Cached clearly ahead of Shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, fmt, format_table, geometric_mean

SCHEMES = ("private", "shared", "cached")


@dataclass
class PriorSchemesResult:
    n_gpus: int
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)  # workload -> scheme -> x

    def average(self, scheme: str) -> float:
        return geometric_mean([per_wl[scheme] for per_wl in self.slowdowns.values()])


def run(runner: ExperimentRunner | None = None) -> PriorSchemesResult:
    runner = runner or ExperimentRunner()
    configs = {s: scheme_config(s, n_gpus=runner.n_gpus) for s in SCHEMES}
    result = PriorSchemesResult(n_gpus=runner.n_gpus)
    for wl in runner.sweep(configs):
        result.slowdowns[wl.spec.abbr] = {s: wl.slowdown(s) for s in SCHEMES}
    return result


def format_result(result: PriorSchemesResult) -> str:
    rows = [
        [abbr, *[fmt(per_wl[s]) for s in SCHEMES]]
        for abbr, per_wl in result.slowdowns.items()
    ]
    rows.append(["average", *[fmt(result.average(s)) for s in SCHEMES]])
    return format_table(
        f"Figure 9: prior schemes, OTP 4x ({result.n_gpus} GPUs, normalized to unsecure)",
        ["workload", *SCHEMES],
        rows,
    )


__all__ = ["run", "format_result", "PriorSchemesResult", "SCHEMES"]
