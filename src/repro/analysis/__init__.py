"""Post-processing analysis of simulation reports.

Utilities the experiment harnesses and examples share: aggregating reports
across workloads, comparing schemes, and characterizing traffic/burstiness.
"""

from repro.analysis.compare import SchemeComparison, compare_schemes
from repro.analysis.traffic import TrafficBreakdown, traffic_breakdown
from repro.analysis.burstiness import burst_summary

__all__ = [
    "SchemeComparison",
    "compare_schemes",
    "TrafficBreakdown",
    "traffic_breakdown",
    "burst_summary",
]
