"""Scheme-vs-scheme comparison of simulation reports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.system import SimulationReport


@dataclass(frozen=True)
class SchemeComparison:
    """Pairwise comparison of one workload under two configurations."""

    workload: str
    baseline_scheme: str
    candidate_scheme: str
    speedup: float  # >1 means the candidate is faster
    traffic_saving: float  # fraction of bytes removed (can be negative)
    hit_rate_delta_send: float
    hit_rate_delta_recv: float

    @property
    def candidate_wins(self) -> bool:
        return self.speedup > 1.0


def compare_schemes(
    baseline: SimulationReport, candidate: SimulationReport
) -> SchemeComparison:
    """Compare two reports of the *same workload trace*."""
    if baseline.workload != candidate.workload:
        raise ValueError(
            f"cannot compare different workloads: {baseline.workload} vs {candidate.workload}"
        )
    if candidate.execution_cycles <= 0 or baseline.traffic_bytes <= 0:
        raise ValueError("reports must contain completed executions")
    return SchemeComparison(
        workload=baseline.workload,
        baseline_scheme=baseline.scheme,
        candidate_scheme=candidate.scheme,
        speedup=baseline.execution_cycles / candidate.execution_cycles,
        traffic_saving=1.0 - candidate.traffic_bytes / baseline.traffic_bytes,
        hit_rate_delta_send=candidate.otp_send.hit - baseline.otp_send.hit,
        hit_rate_delta_recv=candidate.otp_recv.hit - baseline.otp_recv.hit,
    )


__all__ = ["SchemeComparison", "compare_schemes"]
