"""Burstiness characterization of a simulation report."""

from __future__ import annotations

from repro.system import SimulationReport

#: Bin count of the Figs 15/16 histograms: [0,40) [40,160) [160,640)
#: [640,2560) [2560,inf)
N_BINS = 5


def burst_summary(report: SimulationReport, group: int = 16) -> dict[str, float]:
    """Summarize a report's burst histogram.

    Returns the fraction of ``group``-block accumulations completing within
    160 cycles, within 640 cycles, and the tail beyond 2560 cycles —
    the quantities the paper's §III-B discussion cites.
    """
    if group == 16:
        fractions = report.burst16_fractions
    elif group == 32:
        fractions = report.burst32_fractions
    else:
        raise ValueError("the paper measures 16- and 32-block groups")
    if not fractions:
        return {"within_160": 0.0, "within_640": 0.0, "tail": 0.0}
    if len(fractions) != N_BINS:
        raise ValueError(f"expected {N_BINS} bins, got {len(fractions)}")
    return {
        "within_160": fractions[0] + fractions[1],
        "within_640": fractions[0] + fractions[1] + fractions[2],
        "tail": fractions[4],
    }


__all__ = ["burst_summary", "N_BINS"]
