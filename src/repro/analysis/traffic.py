"""Traffic decomposition of a simulation report."""

from __future__ import annotations

from dataclasses import dataclass

from repro.system import SimulationReport


@dataclass(frozen=True)
class TrafficBreakdown:
    """Bytes on the interconnect, split by what put them there."""

    workload: str
    scheme: str
    total_bytes: int
    base_bytes: int  # headers + payloads the unsecure system also sends
    meta_bytes: int  # security metadata (CTR, MAC, IDs, ACKs, batch MACs)

    @property
    def meta_fraction(self) -> float:
        return self.meta_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def amplification(self) -> float:
        """total / base — the security bandwidth tax."""
        return self.total_bytes / self.base_bytes if self.base_bytes else 1.0


def traffic_breakdown(report: SimulationReport) -> TrafficBreakdown:
    if report.base_traffic_bytes + report.meta_traffic_bytes != report.traffic_bytes:
        raise ValueError("report's byte accounting is inconsistent")
    return TrafficBreakdown(
        workload=report.workload,
        scheme=report.scheme,
        total_bytes=report.traffic_bytes,
        base_bytes=report.base_traffic_bytes,
        meta_bytes=report.meta_traffic_bytes,
    )


__all__ = ["TrafficBreakdown", "traffic_breakdown"]
