"""Counter-mode one-time-pad construction used by the secure channels.

The paper (Fig. 4) derives each pad from a *seed* combining the message
counter (MsgCTR), the sender ID, and the receiver ID, encrypted under the
session key that CPU and GPUs exchange at boot.  Two pads are derived per
message: a 512-bit encryption pad (one 64 B cache block) and a 128-bit
authentication pad.

The *Shared* scheme's distinguishing property — seeds built *without* the
receiver ID — is expressed with ``receiver_id=None``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES128

BLOCK_BYTES = 64  # protected payload granularity (one cache block)
ENC_PAD_BYTES = 64  # 512-bit encryption pad
AUTH_PAD_BYTES = 16  # 128-bit authentication pad


def make_seed(counter: int, sender_id: int, receiver_id: int | None) -> bytes:
    """Build the 16-byte pad seed from (MsgCTR, senderID, receiverID).

    ``receiver_id=None`` models the Shared scheme, which omits the receiver
    from the seed so a single counter can serve all destinations.
    """
    if counter < 0:
        raise ValueError("message counter must be non-negative")
    recv = 0xFFFF if receiver_id is None else receiver_id
    return (
        counter.to_bytes(8, "big")
        + sender_id.to_bytes(2, "big")
        + recv.to_bytes(2, "big")
        + b"\x00\x00\x00\x00"
    )


@dataclass(frozen=True)
class OneTimePad:
    """A pre-generated pad pair bound to one (counter, sender, receiver)."""

    counter: int
    sender_id: int
    receiver_id: int | None
    enc_pad: bytes
    auth_pad: bytes

    def encrypt(self, plaintext: bytes) -> bytes:
        """XOR the payload with the encryption pad (the 1-cycle operation)."""
        if len(plaintext) > len(self.enc_pad):
            raise ValueError(
                f"payload of {len(plaintext)} bytes exceeds the {len(self.enc_pad)}-byte pad"
            )
        return bytes(p ^ k for p, k in zip(plaintext, self.enc_pad))

    # decryption is the same XOR
    decrypt = encrypt


class PadGenerator:
    """Derives :class:`OneTimePad` objects under a session key.

    Each 64-byte encryption pad takes four AES blocks (counter-mode over the
    seed with a 2-bit lane index folded into the last byte); the auth pad is
    a fifth block with a distinct domain separator.
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)

    def generate(self, counter: int, sender_id: int, receiver_id: int | None) -> OneTimePad:
        seed = make_seed(counter, sender_id, receiver_id)
        lanes = []
        for lane in range(ENC_PAD_BYTES // 16):
            lane_seed = seed[:-1] + bytes([lane])
            lanes.append(self._aes.encrypt_block(lane_seed))
        auth_seed = seed[:-1] + bytes([0x80])
        auth_pad = self._aes.encrypt_block(auth_seed)
        return OneTimePad(
            counter=counter,
            sender_id=sender_id,
            receiver_id=receiver_id,
            enc_pad=b"".join(lanes),
            auth_pad=auth_pad,
        )


__all__ = [
    "BLOCK_BYTES",
    "ENC_PAD_BYTES",
    "AUTH_PAD_BYTES",
    "OneTimePad",
    "PadGenerator",
    "make_seed",
]
