"""Message authentication codes for secure inter-processor messages.

A per-message MsgMAC is a GHASH of the ciphertext masked with the message's
authentication pad (the GCM construction, Fig. 4).  The metadata-batching
technique (Fig. 20) concatenates the per-block MsgMACs of a batch and
authenticates the concatenation with a single *batched* MsgMAC, so only one
MAC crosses the interconnect per batch.

The wire format truncates MACs to 8 bytes, matching the paper's hardware
overhead accounting (§IV-D uses 8 B MsgMACs).
"""

from __future__ import annotations

from repro.crypto.gcm import ghash
from repro.crypto.counter_mode import OneTimePad

WIRE_MAC_BYTES = 8


def truncate_mac(tag: bytes, length: int = WIRE_MAC_BYTES) -> bytes:
    """Truncate a full 16-byte tag to its wire representation."""
    if length <= 0 or length > len(tag):
        raise ValueError(f"invalid MAC truncation length {length}")
    return tag[:length]


class MessageMAC:
    """Computes per-message MsgMACs under a GHASH key.

    The GHASH key plays the role of the hardware engine's hash subkey; each
    message's authentication pad masks the digest so the MAC is unforgeable
    without the session key.
    """

    def __init__(self, hash_key: bytes) -> None:
        if len(hash_key) != 16:
            raise ValueError("GHASH key must be 16 bytes")
        self._hash_key = hash_key

    def compute(self, ciphertext: bytes, pad: OneTimePad, aad: bytes = b"") -> bytes:
        digest = ghash(self._hash_key, aad, ciphertext)
        masked = bytes(d ^ p for d, p in zip(digest, pad.auth_pad))
        return truncate_mac(masked)

    def verify(self, ciphertext: bytes, pad: OneTimePad, mac: bytes, aad: bytes = b"") -> bool:
        return self.compute(ciphertext, pad, aad) == mac


def batched_mac(hash_key: bytes, member_macs: list[bytes]) -> bytes:
    """Batched_MsgMAC = MAC over Concat(MsgMAC_1 … MsgMAC_n) (Formula 5).

    Only this single 8-byte value crosses the interconnect; the receiver
    recomputes each member MsgMAC locally (storing them in MsgMAC storage to
    tolerate out-of-order arrival) and checks the batch in order.
    """
    if not member_macs:
        raise ValueError("a batch must contain at least one MsgMAC")
    return truncate_mac(ghash(hash_key, b"", b"".join(member_macs)))


__all__ = ["MessageMAC", "batched_mac", "truncate_mac", "WIRE_MAC_BYTES"]
