"""Functional cryptography substrate.

The paper's secure channels rely on AES-GCM counter-mode authenticated
encryption implemented in hardware engines.  The simulator models those
engines' *timing*; this package implements the *function* — a from-scratch
AES-128 block cipher, GHASH, AES-GCM, and the counter-mode one-time-pad
construction — so the protocol layer can carry real ciphertext and MACs and
tests can prove end-to-end confidentiality/integrity round-trips.

Nothing here is intended to be side-channel safe or fast; it is a reference
implementation validated against NIST test vectors.
"""

from repro.crypto.aes import AES128
from repro.crypto.gcm import AESGCM, ghash
from repro.crypto.counter_mode import OneTimePad, PadGenerator, make_seed
from repro.crypto.mac import MessageMAC, batched_mac, truncate_mac

__all__ = [
    "AES128",
    "AESGCM",
    "ghash",
    "OneTimePad",
    "PadGenerator",
    "make_seed",
    "MessageMAC",
    "batched_mac",
    "truncate_mac",
]
