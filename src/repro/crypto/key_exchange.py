"""Boot-time session-key establishment (§IV-A).

The paper assumes "the CPU and GPUs exchange a key during the system boot"
[34, 35, 36] under the remote-attestation umbrella of the TEE.  This module
provides that substrate: finite-field Diffie-Hellman over RFC 3526 group 14
(2048-bit MODP), with session keys derived from the shared secret via an
AES-based one-way derivation (CBC-MAC style), one (pair, purpose) key per
directed channel — so the encryption and authentication hierarchies of
:mod:`repro.secure.protocol` can be rooted in an actual exchanged secret
rather than a constant.

As with the rest of the crypto substrate, this is a clear reference
implementation, not a hardened one (no side-channel defenses; attestation
itself — quote verification — is out of scope, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES128

# RFC 3526, group 14: the 2048-bit MODP prime, constructed from its
# definition  P = 2^2048 - 2^1984 - 1 + 2^64 * { [2^1918 pi] + 124476 }
# rather than pasted — the binary digits of pi come from an exact integer
# Machin-formula evaluation, so the constant is self-verifying.


def _atan_inv_scaled(x: int, scale_bits: int) -> int:
    """floor-accurate sum of (2^scale_bits) * atan(1/x), alternating series."""
    scale = 1 << scale_bits
    total = 0
    k = 0
    x2 = x * x
    denom_power = x
    while True:
        term = scale // ((2 * k + 1) * denom_power)
        if term == 0:
            break
        total += -term if k % 2 else term
        k += 1
        denom_power *= x2
    return total


def _pi_scaled(scale_bits: int) -> int:
    """(2^scale_bits) * pi via Machin: pi = 16 atan(1/5) - 4 atan(1/239).

    Evaluated with ~80 guard bits so the truncation error of the integer
    series never reaches the returned precision.
    """
    guard = 80
    work = scale_bits + guard
    pi_work = 16 * _atan_inv_scaled(5, work) - 4 * _atan_inv_scaled(239, work)
    return pi_work >> guard


def _modp_2048() -> int:
    pi_1918 = _pi_scaled(1918)
    return (1 << 2048) - (1 << 1984) - 1 + (1 << 64) * (pi_1918 + 124476)


P = _modp_2048()
G = 2


def is_probable_prime(n: int, witnesses: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)) -> bool:
    """Deterministic-witness Miller-Rabin (sound for the sizes used here)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class KeyShare:
    """A party's public contribution."""

    node_id: int
    public: int


class KeyExchange:
    """One node's half of a Diffie-Hellman handshake.

    The private exponent is injected (from the platform's entropy source in
    a real system; tests pass fixed values for determinism).
    """

    def __init__(self, node_id: int, private_exponent: int) -> None:
        if not 1 < private_exponent < P - 1:
            raise ValueError("private exponent out of range")
        self.node_id = node_id
        self._private = private_exponent
        self.public = pow(G, private_exponent, P)

    def share(self) -> KeyShare:
        return KeyShare(node_id=self.node_id, public=self.public)

    def shared_secret(self, peer: KeyShare) -> bytes:
        """The raw DH secret with ``peer``, as fixed-width bytes."""
        if not 1 < peer.public < P - 1:
            raise ValueError("degenerate peer public value")
        secret = pow(peer.public, self._private, P)
        return secret.to_bytes((P.bit_length() + 7) // 8, "big")


def _compress(data: bytes) -> bytes:
    """AES-CBC-MAC style one-way compression to 16 bytes."""
    cipher = AES128(b"repro-kdf-fixed!")
    state = bytes(16)
    padded = data + b"\x80" + bytes((15 - len(data) % 16) % 16)
    for i in range(0, len(padded), 16):
        block = bytes(a ^ b for a, b in zip(state, padded[i : i + 16]))
        state = cipher.encrypt_block(block)
    return state


def derive_key(shared_secret: bytes, sender: int, receiver: int, purpose: str) -> bytes:
    """Derive one 16-byte session key bound to a channel and purpose.

    ``purpose`` separates the encryption-pad key from the GHASH key so a
    compromise of one never reveals the other (domain separation).
    """
    if sender == receiver:
        raise ValueError("a channel needs two distinct endpoints")
    label = f"{purpose}|{sender}->{receiver}".encode()
    return _compress(_compress(shared_secret) + label)


def establish_session(
    a: KeyExchange, b: KeyExchange
) -> tuple[dict[str, bytes], dict[str, bytes]]:
    """Full handshake: both sides derive identical per-purpose keys.

    Returns (a_keys, b_keys), each mapping ``"enc"``/``"mac"`` to the keys
    for the a→b channel; a real deployment runs this once per pair at boot
    under attestation.
    """
    secret_a = a.shared_secret(b.share())
    secret_b = b.shared_secret(a.share())
    if secret_a != secret_b:
        raise RuntimeError("handshake failed: secrets disagree")
    keys = {
        "enc": derive_key(secret_a, a.node_id, b.node_id, "enc"),
        "mac": derive_key(secret_a, a.node_id, b.node_id, "mac"),
    }
    return keys, dict(keys)


__all__ = [
    "KeyExchange",
    "KeyShare",
    "derive_key",
    "establish_session",
    "is_probable_prime",
    "P",
    "G",
]
