"""AES-128 block cipher, implemented from the FIPS-197 specification.

Only encryption is required by this project: counter-mode (and GCM, which is
built on counter mode) never runs the inverse cipher.  The inverse cipher is
implemented anyway so the block cipher is complete and testable on its own.

The implementation favours clarity over speed: the state is a 16-byte
``bytearray`` in column-major order as in the standard, and each round
transformation is its own function.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# S-box construction.  Rather than pasting the 256-entry table, derive it from
# the definition: multiplicative inverse in GF(2^8) followed by the affine
# transform.  This is done once at import time and verified by test vectors.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via exponentiation: a^254 == a^-1 in GF(2^8).
    inv = [0] * 256
    for a in range(1, 256):
        x = a
        acc = 1
        # a^254 = a^(2+4+8+16+32+64+128)
        for bit in range(1, 8):
            x = _gf_mul(x, x)
            acc = _gf_mul(acc, x)
        inv[a] = acc
    sbox = bytearray(256)
    for a in range(256):
        b = inv[a]
        # affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        res = 0x63
        for shift in range(5):
            res ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[a] = res
    inv_sbox = bytearray(256)
    for a, s in enumerate(sbox):
        inv_sbox[s] = a
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# Precomputed GF multiplication tables for MixColumns speed.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))


#: rounds per key length (FIPS-197 §5)
_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


class AES:
    """AES with a 128-, 192-, or 256-bit key (10/12/14 rounds)."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        rounds = _ROUNDS_BY_KEY_LEN.get(len(key))
        if rounds is None:
            raise ValueError(
                f"AES requires a 16-, 24-, or 32-byte key, got {len(key)} bytes"
            )
        self.rounds = rounds
        self.round_keys = self._expand_key(key, rounds)

    # ------------------------------------------------------------------
    # Key schedule (FIPS-197 §5.2, generic over Nk)
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes, rounds: int) -> list[bytes]:
        nk = len(key) // 4
        words = [key[4 * i : 4 * i + 4] for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(SBOX[b] for b in rotated)
                temp = bytes([temp[0] ^ _RCON[i // nk - 1]]) + temp[1:]
            elif nk > 6 and i % nk == 4:
                temp = bytes(SBOX[b] for b in temp)  # AES-256 extra SubWord
            words.append(bytes(a ^ b for a, b in zip(words[i - nk], temp)))
        return [b"".join(words[4 * r : 4 * r + 4]) for r in range(rounds + 1)]

    # ------------------------------------------------------------------
    # Round transformations.  State is a bytearray of 16 bytes where
    # state[r + 4*c] is row r, column c (column-major, as in FIPS-197).
    # ------------------------------------------------------------------
    @staticmethod
    def _add_round_key(state: bytearray, round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: bytearray) -> None:
        for i in range(16):
            state[i] = SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: bytearray) -> None:
        for i in range(16):
            state[i] = INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: bytearray) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: bytearray) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: bytearray) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: bytearray) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[i + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[i + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[i + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        state = bytearray(plaintext)
        self._add_round_key(state, self.round_keys[0])
        for rnd in range(1, self.rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self.round_keys[rnd])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self.round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        state = bytearray(ciphertext)
        self._add_round_key(state, self.round_keys[self.rounds])
        for rnd in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self.round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self.round_keys[0])
        return bytes(state)


class AES128(AES):
    """AES restricted to 128-bit keys (the configuration the paper models)."""

    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 requires a 16-byte key, got {len(key)}")
        super().__init__(key)


__all__ = ["AES", "AES128", "SBOX", "INV_SBOX"]
