"""AES-GCM authenticated encryption (NIST SP 800-38D).

GCM = counter-mode encryption + GHASH authentication over GF(2^128).  The
hardware engines the paper models ("fully pipelined AES-GCM engines",
40-cycle latency) compute exactly this; the simulator's
:mod:`repro.secure.engine` models the latency while this module provides the
function for protocol-level tests.
"""

from __future__ import annotations

from repro.crypto.aes import AES128

_R = 0xE1000000000000000000000000000000


def _gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) with the GCM polynomial (bit-reflected)."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _int_to_bytes(value: int) -> bytes:
    return value.to_bytes(16, "big")


def ghash(h: bytes, aad: bytes, ciphertext: bytes) -> bytes:
    """GHASH_H(A, C) as defined by SP 800-38D §6.4."""
    h_int = _bytes_to_int(h)
    y = 0

    def absorb(data: bytes) -> None:
        nonlocal y
        for i in range(0, len(data), 16):
            block = data[i : i + 16]
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            y = _gf128_mul(y ^ _bytes_to_int(block), h_int)

    absorb(aad)
    absorb(ciphertext)
    lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big")
    y = _gf128_mul(y ^ _bytes_to_int(lengths), h_int)
    return _int_to_bytes(y)


class AESGCM:
    """AES-128-GCM with 96-bit IVs (the common hardware fast path)."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)
        self._h = self._aes.encrypt_block(b"\x00" * 16)

    def _j0(self, iv: bytes) -> bytes:
        if len(iv) == 12:
            return iv + b"\x00\x00\x00\x01"
        return self._ghash_iv(iv)

    def _ghash_iv(self, iv: bytes) -> bytes:
        h_int = _bytes_to_int(self._h)
        y = 0
        padded = iv + b"\x00" * ((16 - len(iv) % 16) % 16)
        for i in range(0, len(padded), 16):
            y = _gf128_mul(y ^ _bytes_to_int(padded[i : i + 16]), h_int)
        y = _gf128_mul(y ^ (len(iv) * 8), h_int)
        return _int_to_bytes(y)

    def _ctr_stream(self, j0: bytes, length: int) -> bytes:
        counter = _bytes_to_int(j0)
        out = bytearray()
        while len(out) < length:
            counter = (counter & ~0xFFFFFFFF) | ((counter + 1) & 0xFFFFFFFF)
            out.extend(self._aes.encrypt_block(_int_to_bytes(counter)))
        return bytes(out[:length])

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> tuple[bytes, bytes]:
        """Return ``(ciphertext, 16-byte tag)``."""
        j0 = self._j0(iv)
        stream = self._ctr_stream(j0, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        s = ghash(self._h, aad, ciphertext)
        tag = bytes(a ^ b for a, b in zip(self._aes.encrypt_block(j0), s))
        return ciphertext, tag

    def decrypt(self, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raises ValueError on forgery."""
        j0 = self._j0(iv)
        s = ghash(self._h, aad, ciphertext)
        expected = bytes(a ^ b for a, b in zip(self._aes.encrypt_block(j0), s))
        if expected[: len(tag)] != tag:
            raise ValueError("GCM tag mismatch: message is forged or replayed")
        stream = self._ctr_stream(j0, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))


__all__ = ["AESGCM", "ghash"]
