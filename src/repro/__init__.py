"""repro — secure multi-GPU communication simulator.

A from-scratch reproduction of *"Supporting Secure Multi-GPU Computing
with Dynamic and Batched Metadata Management"* (HPCA 2024): a trace-driven
discrete-event simulator of a CPU + N-GPU system with fine-grained shared
memory, counter-mode authenticated-encrypted interconnects, four OTP
buffer-management schemes (Private / Shared / Cached and the paper's
Dynamic), and security-metadata batching.

Quickstart::

    from repro import MultiGpuSystem, scheme_config, get_workload

    trace = get_workload("matrixmultiplication").generate(n_gpus=4, seed=1)
    baseline = MultiGpuSystem(scheme_config("unsecure")).run(trace)

    trace = get_workload("matrixmultiplication").generate(n_gpus=4, seed=1)
    secured = MultiGpuSystem(scheme_config("batching")).run(trace)

    print(f"overhead: {secured.slowdown_vs(baseline) - 1:.1%}")
"""

from repro.configs import (
    AdversaryConfig,
    FaultConfig,
    GpuConfig,
    LinkConfig,
    MetadataConfig,
    MigrationConfig,
    SecurityConfig,
    SystemConfig,
    default_config,
    scheme_config,
)
from repro.interconnect.faults import LinkFailureError
from repro.obs import MetricsRegistry, Telemetry
from repro.secure.adversary import AttackKind, AttackReport
from repro.secure.invariants import InvariantMonitor, InvariantViolationError
from repro.system import MultiGpuSystem, OtpDistribution, SimulationReport, run_workload
from repro.workloads import (
    TraceBuilder,
    WorkloadSpec,
    WorkloadTrace,
    all_workloads,
    get_workload,
    workloads_in_class,
)

__version__ = "1.4.0"

__all__ = [
    "AdversaryConfig",
    "AttackKind",
    "AttackReport",
    "FaultConfig",
    "InvariantMonitor",
    "InvariantViolationError",
    "MetricsRegistry",
    "Telemetry",
    "GpuConfig",
    "LinkConfig",
    "LinkFailureError",
    "MetadataConfig",
    "MigrationConfig",
    "SecurityConfig",
    "SystemConfig",
    "default_config",
    "scheme_config",
    "MultiGpuSystem",
    "OtpDistribution",
    "SimulationReport",
    "run_workload",
    "TraceBuilder",
    "WorkloadSpec",
    "WorkloadTrace",
    "all_workloads",
    "get_workload",
    "workloads_in_class",
    "__version__",
]
