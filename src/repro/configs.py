"""System configuration — the simulated machine of Table III.

Every experiment builds a :class:`SystemConfig` (usually via
:func:`default_config`) and overrides only what its sweep varies: the OTP
scheme, the OTP multiplier (``OTP Nx``), the AES-GCM latency, or the GPU
count.  All cycle quantities are at the 1 GHz shader clock, so GB/s values
from the paper translate numerically into bytes/cycle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace


@dataclass(frozen=True)
class GpuConfig:
    """Per-GPU microarchitecture (Table III, abstracted).

    ``n_lanes`` compute-unit lanes replay the workload per GPU; each lane
    stands for a group of CUs sharing an L1 (the full 64-CU machine is
    folded into fewer lanes to keep the Python model tractable — burstiness
    and overlap, the properties the paper's mechanisms react to, come from
    lane multiplicity, not the absolute CU count).
    """

    n_lanes: int = 8
    lane_outstanding: int = 8  # wavefront-dependency cap per lane
    max_outstanding: int = 64  # GPU-wide remote-request window (MSHR-like)
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 16
    hbm_latency: int = 160
    hbm_bytes_per_cycle: float = 512.0
    iommu_walk_cycles: int = 200
    l1_tlb_entries: int = 64
    l2_tlb_entries: int = 1024


@dataclass(frozen=True)
class LinkConfig:
    """Interconnect rates (Table III) and the GPU-fabric organization.

    ``fabric``: ``p2p`` (per-GPU full-rate ports, the paper's setting),
    ``ring`` (rack-scale ring, messages hop through intermediate GPUs), or
    ``switch`` (central NVSwitch-like crossbar with finite aggregate
    bandwidth = ``switch_factor`` × a port rate).
    """

    pcie_bytes_per_cycle: float = 32.0
    nvlink_bytes_per_cycle: float = 50.0
    pcie_latency: int = 120
    nvlink_latency: int = 60
    fabric: str = "p2p"
    switch_factor: float = 4.0


@dataclass(frozen=True)
class MetadataConfig:
    """Wire sizes for headers and security metadata (§II-C, §IV-D).

    ``compressed_counters`` is an optional extension beyond the paper
    (Common-Counters-style delta encoding): per-pair channels deliver in
    FIFO order, so the full 64-bit MsgCTR can be replaced by a short delta
    against the receiver's expected counter, resynchronized via the ACK
    stream.
    """

    request_header_bytes: int = 16
    response_header_bytes: int = 16
    block_bytes: int = 64
    msg_ctr_bytes: int = 8
    msg_mac_bytes: int = 8
    sender_id_bytes: int = 1
    ack_bytes: int = 16
    batch_len_bytes: int = 1
    compressed_counters: bool = False
    compressed_ctr_bytes: int = 2

    @property
    def wire_ctr_bytes(self) -> int:
        return self.compressed_ctr_bytes if self.compressed_counters else self.msg_ctr_bytes

    @property
    def per_message_meta_bytes(self) -> int:
        """CTR + MAC + sender ID attached to each secured message."""
        return self.wire_ctr_bytes + self.msg_mac_bytes + self.sender_id_bytes

    @property
    def batched_block_meta_bytes(self) -> int:
        """Metadata still attached per block when batching is on."""
        return self.wire_ctr_bytes + self.sender_id_bytes


@dataclass(frozen=True)
class SecurityConfig:
    """Which protection scheme runs and how it is provisioned."""

    scheme: str = "unsecure"  # unsecure | private | shared | cached | dynamic
    otp_multiplier: int = 4  # the paper's "OTP Nx"
    aes_gcm_latency: int = 40
    ghash_latency: int = 4  # MAC compute with a ready pad
    xor_latency: int = 1  # en/decrypt with a ready pad
    count_metadata: bool = True  # False isolates +SecureCommu (Fig. 11)
    batching: bool = False
    batch_size: int = 16
    batch_timeout: int = 160  # cycles an open batch waits before closing
    alpha: float = 0.9  # EWMA rate, send/recv direction split
    beta: float = 0.5  # EWMA rate, per-destination split
    interval: int = 1000  # T, the monitoring/adjustment interval
    audit: bool = False  # record secured messages for functional replay
    protect_requests: bool = False  # extension: secure control messages too [34]
    metadata: MetadataConfig = field(default_factory=MetadataConfig)

    def total_otp_entries(self, n_peers: int) -> int:
        """Pool size per processor: peers x 2 directions x multiplier."""
        return n_peers * 2 * self.otp_multiplier


@dataclass(frozen=True)
class FaultConfig:
    """Unreliable-interconnect model: injected link faults and recovery knobs.

    Per secured data-block transmission a single seeded roll picks at most
    one fault (rates are therefore mutually exclusive and must sum to <= 1):

    * ``drop_rate``      — the packet vanishes on the wire (bandwidth is
      still consumed: the bits were sent, then lost),
    * ``corrupt_rate``   — a payload bit flips; secure channels catch it at
      MsgMAC verification, the unsecure fabric delivers it silently,
    * ``duplicate_rate`` — the link replays the wire message once more,
    * ``delay_rate``     — a latency spike of ``delay_cycles`` (congestion,
      lane retraining) hits the packet.

    The recovery side belongs to the secure channel: a sender arms a
    retransmission timer per outstanding block (``ack_timeout`` cycles on
    the wire without an ACK), backs off exponentially by ``backoff_factor``
    up to ``backoff_max`` per retry, and gives up after ``max_retries``
    retransmissions with a structured
    :class:`~repro.interconnect.faults.LinkFailureError` instead of hanging.

    All randomness derives from ``seed`` via per-directed-pair generators,
    so runs are bit-reproducible across serial / parallel / cached
    execution regardless of event interleaving between pairs.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_cycles: int = 800
    seed: int = 0
    ack_timeout: int = 2500  # sender RTO: cycles on the wire without an ACK
    max_retries: int = 8  # retransmissions before declaring link failure
    backoff_factor: float = 2.0
    backoff_max: int = 40000  # RTO ceiling under repeated timeouts

    def __post_init__(self) -> None:
        rates = (self.drop_rate, self.corrupt_rate, self.duplicate_rate, self.delay_rate)
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("fault rates must be probabilities in [0, 1]")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError("combined fault rate cannot exceed 1")
        if self.delay_cycles < 0:
            raise ValueError("delay_cycles must be non-negative")
        if self.ack_timeout < 1:
            raise ValueError("ack_timeout must be at least one cycle")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max < self.ack_timeout:
            raise ValueError("backoff_max must be >= ack_timeout")

    @property
    def total_rate(self) -> float:
        return self.drop_rate + self.corrupt_rate + self.duplicate_rate + self.delay_rate

    @property
    def enabled(self) -> bool:
        """True when any fault can actually fire; False keeps every hot
        path (and every cache key) identical to the clean-channel model."""
        return self.total_rate > 0.0


@dataclass(frozen=True)
class AdversaryConfig:
    """Active in-fabric adversary: targeted attacks on secured data blocks.

    Where :class:`FaultConfig` models *random* link failures, this models a
    man-in-the-fabric who captures, mutates, re-injects, redirects, and
    forges wire traffic.  Per data-block wire copy a single seeded roll
    picks at most one attack (rates are mutually exclusive, sum <= 1):

    * ``flip_cipher_rate`` — flip bits in the ciphertext payload,
    * ``flip_mac_rate``    — flip bits in the attached MsgMAC tag,
    * ``replay_rate``      — capture the block and re-inject an exact copy
      ``replay_lag`` cycles later (same counter, same MAC),
    * ``reorder_rate``     — hold the block ``reorder_lag`` cycles so later
      counters overtake it (probes the ACK replay-window boundary),
    * ``truncate_rate``    — cut the block short on the wire,
    * ``splice_rate``      — redirect the block onto another directed link
      (it arrives at the wrong receiver and never at the right one),
    * ``forge_rate``       — inject a from-scratch fabricated block
      alongside the legitimate one, under a counter the sender never used.

    ``replay_window`` is the sender-side out-of-order ACK tolerance handed
    to every :class:`~repro.secure.replay.ReplayGuard` while the adversary
    is active (dormant configs keep the strict-FIFO default).  When
    ``quarantine_threshold`` > 0, that many detections on one directed
    link quarantine it: the :class:`~repro.interconnect.topology.Topology`
    reroutes the pair over a memoized alternate path, escaping a
    link-local attacker.

    All randomness derives from ``seed`` via per-directed-pair generators
    (the same bit-reproducibility contract as :class:`FaultConfig`).
    """

    flip_cipher_rate: float = 0.0
    flip_mac_rate: float = 0.0
    replay_rate: float = 0.0
    reorder_rate: float = 0.0
    truncate_rate: float = 0.0
    splice_rate: float = 0.0
    forge_rate: float = 0.0
    seed: int = 0
    replay_lag: int = 600  # cycles the attacker holds a captured copy
    reorder_lag: int = 400  # extra cycles a reordered block is delayed
    replay_window: int = 8  # sender-side out-of-order ACK tolerance
    quarantine_threshold: int = 0  # detections per link before failover (0 = never)

    _RATE_FIELDS = (
        "flip_cipher_rate",
        "flip_mac_rate",
        "replay_rate",
        "reorder_rate",
        "truncate_rate",
        "splice_rate",
        "forge_rate",
    )

    def __post_init__(self) -> None:
        rates = [getattr(self, name) for name in self._RATE_FIELDS]
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("attack rates must be probabilities in [0, 1]")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError("combined attack rate cannot exceed 1")
        if self.replay_lag < 0 or self.reorder_lag < 0:
            raise ValueError("attack lags must be non-negative")
        if self.replay_window < 0:
            raise ValueError("replay_window must be non-negative")
        if self.quarantine_threshold < 0:
            raise ValueError("quarantine_threshold must be non-negative")

    @property
    def total_rate(self) -> float:
        return sum(getattr(self, name) for name in self._RATE_FIELDS)

    @property
    def enabled(self) -> bool:
        """True when any attack can fire; False keeps every hot path (and
        every cache key) identical to the adversary-free model."""
        return self.total_rate > 0.0


@dataclass(frozen=True)
class MigrationConfig:
    """Access-counter page-migration policy parameters (§V-A)."""

    threshold: int = 8
    driver_cycles: int = 2000
    shootdown_cycles: int = 800


@dataclass(frozen=True)
class SystemConfig:
    """The whole simulated machine."""

    n_gpus: int = 4
    gpu: GpuConfig = field(default_factory=GpuConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    fault: FaultConfig = field(default_factory=FaultConfig)
    adversary: AdversaryConfig = field(default_factory=AdversaryConfig)
    cpu_dram_latency: int = 220
    timeline_interval: int = 5000  # bucketing for Figs 13/14 series

    @property
    def n_nodes(self) -> int:
        return self.n_gpus + 1

    @property
    def n_peers(self) -> int:
        """Peers of any node: everyone else (CPU + other GPUs)."""
        return self.n_nodes - 1

    def with_security(self, **overrides) -> "SystemConfig":
        return replace(self, security=replace(self.security, **overrides))

    def with_fault(self, **overrides) -> "SystemConfig":
        return replace(self, fault=replace(self.fault, **overrides))

    def with_adversary(self, **overrides) -> "SystemConfig":
        return replace(self, adversary=replace(self.adversary, **overrides))


def default_config(n_gpus: int = 4, **security_overrides) -> SystemConfig:
    """Table III configuration with optional security overrides."""
    cfg = SystemConfig(n_gpus=n_gpus)
    if security_overrides:
        cfg = cfg.with_security(**security_overrides)
    return cfg


def config_to_dict(config: SystemConfig) -> dict:
    """JSON-safe rendering of the full configuration tree.

    Inverse of :func:`config_from_dict`; the pair is what ships a
    :class:`SystemConfig` across the fleet's TCP wire, so a sweep
    submitted with an arbitrary config (fault rates, adversary mixes,
    fabric overrides) rebuilds *exactly* on the worker side — the
    round trip is exact because every field is an int/float/bool/str.
    """
    return asdict(config)


def _build(cls, data: dict):
    """Rebuild one config dataclass, rejecting unknown fields loudly."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"{cls.__name__} has no fields {sorted(unknown)}")
    return cls(**data)


def config_from_dict(data: dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output."""
    material = dict(data)
    security = dict(material.pop("security", {}))
    metadata = security.pop("metadata", None)
    if metadata is not None:
        security["metadata"] = _build(MetadataConfig, metadata)
    parts = {
        "gpu": (GpuConfig, material.pop("gpu", None)),
        "link": (LinkConfig, material.pop("link", None)),
        "migration": (MigrationConfig, material.pop("migration", None)),
        "fault": (FaultConfig, material.pop("fault", None)),
        "adversary": (AdversaryConfig, material.pop("adversary", None)),
    }
    kwargs = {name: _build(cls, section) for name, (cls, section) in parts.items() if section is not None}
    if security:
        kwargs["security"] = _build(SecurityConfig, security)
    return _build(SystemConfig, {**material, **kwargs})


# Named configurations matching the paper's evaluated systems.
def scheme_config(scheme: str, n_gpus: int = 4, otp_multiplier: int = 4) -> SystemConfig:
    """Build the configuration for one of the paper's evaluated schemes.

    ``scheme`` accepts the paper's names: ``unsecure``, ``private``,
    ``shared``, ``cached``, ``dynamic``, and ``batching`` (= Dynamic +
    metadata batching, the paper's "Ours").
    """
    if scheme == "batching":
        return default_config(n_gpus, scheme="dynamic", batching=True,
                              otp_multiplier=otp_multiplier)
    return default_config(n_gpus, scheme=scheme, otp_multiplier=otp_multiplier)


__all__ = [
    "GpuConfig",
    "LinkConfig",
    "MetadataConfig",
    "SecurityConfig",
    "FaultConfig",
    "AdversaryConfig",
    "MigrationConfig",
    "SystemConfig",
    "config_from_dict",
    "config_to_dict",
    "default_config",
    "scheme_config",
]
