"""Wire protocol of the simulation service: newline-delimited JSON.

One request per line, one response per line, over a local stream socket
(the server binds a Unix domain socket; see ``docs/SERVICE.md`` for the
full schema reference and a worked session transcript).  Both directions
use *canonical JSON* — sorted keys, compact separators — so any response
carrying a report renders byte-identically to the same report serialized
anywhere else in the codebase.  That is what makes the service's
determinism contract checkable with a plain string comparison:
:func:`canonical_report_json` over a report served through the queue must
equal :func:`canonical_report_json` over the same cell run directly
through :class:`~repro.runner.sweep.SweepRunner`.

Requests are ``{"op": ..., ...}`` objects; :func:`validate_request`
normalizes and type-checks them so the server core never sees malformed
input.  Responses are ``{"ok": true, ...}`` on success or
``{"ok": false, "error": {"code", "message", ...}}`` on failure, with
``code`` drawn from :data:`ERROR_CODES`.  A ``queue_full`` error always
carries ``retry_after_s`` — backpressure is explicit, never a silent
drop or a hung connection.
"""

from __future__ import annotations

import json
from typing import Any

from repro.runner.serialize import report_to_dict
from repro.service.queues import DEFAULT_PRIORITY, PRIORITIES
from repro.system import SimulationReport

#: Bump on incompatible wire changes; both sides echo it in ``hello``.
PROTOCOL_VERSION = 1

#: Scheme names a submission may request (mirrors the CLI choices).
SCHEMES = ("unsecure", "private", "shared", "cached", "dynamic", "batching", "ideal")

#: Operations a client may send.
OPS = ("submit", "status", "cancel", "metrics", "ping")

#: Every structured error code a response may carry.
#:
#: ``bad_request``        malformed or unparseable request object
#: ``unknown_workload``   submitted workload is not in the registry
#: ``queue_full``         admission queue at capacity; retry_after_s attached
#: ``draining``           server is draining (SIGTERM); no new admissions
#: ``unknown_job``        status/cancel for a job id the server never issued
#: ``cancelled``          the submission was cancelled before completion
#: ``deadline_exceeded``  the job's deadline elapsed before completion
#: ``execution_failed``   every execution attempt failed (SweepError)
#: ``internal``           unexpected server-side error (bug — report it)
ERROR_CODES = (
    "bad_request",
    "unknown_workload",
    "queue_full",
    "draining",
    "unknown_job",
    "cancelled",
    "deadline_exceeded",
    "execution_failed",
    "internal",
)


class ProtocolError(ValueError):
    """A request that does not conform to the wire schema."""


def encode(message: dict[str, Any]) -> bytes:
    """Render one message as a canonical-JSON line (UTF-8, trailing newline)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one received line into a message object."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def canonical_report_json(report: SimulationReport | dict[str, Any]) -> str:
    """The one true JSON rendering of a report (sorted keys, compact).

    Accepts either a live :class:`SimulationReport` or its
    :func:`~repro.runner.serialize.report_to_dict` dict — both render to
    the same bytes, which is the service's determinism contract.
    """
    if isinstance(report, SimulationReport):
        report = report_to_dict(report)
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------
_MISSING = object()


def _require(obj: dict, field: str, types: type | tuple):
    value = obj.get(field, _MISSING)
    if value is _MISSING:
        raise ProtocolError(f"missing required field {field!r}")
    if value is not None and not isinstance(value, types):
        raise ProtocolError(f"field {field!r} has wrong type {type(value).__name__}")
    return value


def validate_submit(message: dict[str, Any]) -> dict[str, Any]:
    """Normalize a ``submit`` request; raises :class:`ProtocolError`."""
    spec = _require(message, "job", dict)
    workload = _require(spec, "workload", str)
    scheme = spec.get("scheme", "batching")
    if scheme not in SCHEMES:
        raise ProtocolError(f"unknown scheme {scheme!r}; choose from {', '.join(SCHEMES)}")
    gpus = spec.get("gpus", 4)
    seed = spec.get("seed", 1)
    n_lanes = spec.get("n_lanes", 8)
    scale = spec.get("scale", 1.0)
    if not isinstance(gpus, int) or isinstance(gpus, bool) or gpus < 2:
        raise ProtocolError("field 'gpus' must be an integer >= 2")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("field 'seed' must be an integer")
    if not isinstance(n_lanes, int) or isinstance(n_lanes, bool) or n_lanes < 1:
        raise ProtocolError("field 'n_lanes' must be a positive integer")
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ProtocolError("field 'scale' must be a positive number")
    deadline_s = message.get("deadline_s")
    if deadline_s is not None and (
        not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool) or deadline_s <= 0
    ):
        raise ProtocolError("field 'deadline_s' must be a positive number")
    client = message.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("field 'client' must be a non-empty string")
    wait = message.get("wait", True)
    if not isinstance(wait, bool):
        raise ProtocolError("field 'wait' must be a boolean")
    priority = message.get("priority", DEFAULT_PRIORITY)
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"unknown priority {priority!r}; choose from {', '.join(PRIORITIES)}"
        )
    return {
        "op": "submit",
        "client": client,
        "wait": wait,
        "priority": priority,
        "deadline_s": float(deadline_s) if deadline_s is not None else None,
        "job": {
            "workload": workload,
            "scheme": scheme,
            "gpus": gpus,
            "seed": seed,
            "scale": float(scale),
            "n_lanes": n_lanes,
        },
    }


def validate_request(message: dict[str, Any]) -> dict[str, Any]:
    """Validate any request; returns the normalized form."""
    op = _require(message, "op", str)
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {', '.join(OPS)}")
    if op == "submit":
        return validate_submit(message)
    if op in ("status", "cancel"):
        job_id = message.get("job_id")
        if op == "cancel" and not isinstance(job_id, str):
            raise ProtocolError("cancel requires a string 'job_id'")
        if job_id is not None and not isinstance(job_id, str):
            raise ProtocolError("field 'job_id' must be a string")
        return {"op": op, "job_id": job_id}
    return {"op": op}


# ----------------------------------------------------------------------
# Response builders
# ----------------------------------------------------------------------
def ok(**fields: Any) -> dict[str, Any]:
    """A success response."""
    return {"ok": True, **fields}


def error(code: str, message: str, **fields: Any) -> dict[str, Any]:
    """A structured failure response; ``code`` must be a known error code."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"ok": False, "error": {"code": code, "message": message, **fields}}


__all__ = [
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "SCHEMES",
    "ProtocolError",
    "canonical_report_json",
    "decode",
    "encode",
    "error",
    "ok",
    "validate_request",
    "validate_submit",
]
