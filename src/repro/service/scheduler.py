"""Async admission queue and dedup scheduler over :class:`SweepRunner`.

:class:`SimulationService` is the long-lived core behind ``repro-sim
serve``: an asyncio front end that turns independent client submissions
into the same batched, cached, trace-sharing execution a one-shot sweep
gets from :class:`~repro.runner.sweep.SweepRunner`.  The scheduling policy
(full rationale in ``docs/SERVICE.md``):

* **cache short-circuit** — a submission whose
  :func:`~repro.runner.jobs.job_key` is already in the
  :class:`~repro.runner.cache.ResultCache` is answered immediately,
  without occupying a queue slot;
* **single-flight dedup** — identical cells submitted while one is queued
  or running coalesce onto that execution: one simulation, every
  subscriber gets the full report;
* **bounded admission with explicit backpressure** — at most ``max_queue``
  executions may be queued; past that, submissions are rejected with a
  structured ``queue_full`` error carrying ``retry_after_s`` (an EWMA of
  recent batch wall time), never dropped silently;
* **priority classes with per-client fairness** — admission runs through
  the shared :class:`~repro.service.queues.PriorityRoundRobin`: strict
  priority across the ``high`` / ``normal`` / ``low`` classes, round-robin
  across clients within a class, FIFO within a client — so an interactive
  client outranks the weekly bulk sweep by declaring ``high``, and one
  bulk submitter still cannot starve another client of its own class;
* **trace-key batching** — when an execution is dispatched, every queued
  execution sharing its :func:`~repro.runner.trace_store.job_trace_key`
  rides along in the same batch (exactly the grouping
  ``SweepRunner._group_by_trace`` applies), so cells that differ only in
  scheme replay one generated trace;
* **cancellation and deadlines** — a queued ticket cancels instantly; an
  in-flight ticket detaches (the simulation completes and warms the cache
  for the next asker).  A ``deadline_s`` submission whose deadline lapses
  resolves with a structured ``deadline_exceeded`` error, never a hang;
* **graceful drain** — :meth:`drain` stops admission (``draining``
  rejections) and completes every admitted execution before returning.

Batches run on a single worker thread (``run_jobs`` is synchronous and
the runner's stats are not thread-safe); parallelism *within* a batch is
the runner's own process pool, governed by ``jobs``.  Because every
report is produced by the same ``SweepRunner.run_jobs`` path a direct CLI
invocation uses, a served report is byte-identical (canonical JSON) to
the same cell run directly — the determinism contract ``tests/
test_service.py`` asserts.

Scheduler health is observable through the ``service.*`` namespace on
:attr:`SimulationService.telemetry` (queue-depth gauge, admission /
rejection / coalescing / serving counters, queue and batch latency
histograms); ``repro-sim status --metrics`` exports it from a live
server in the standard format ``repro-sim metrics dump`` reads.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.configs import scheme_config
from repro.obs import Telemetry
from repro.runner import ResultCache, SweepJob, SweepRunner, job_key
from repro.runner.trace_store import job_trace_key
from repro.service.queues import DEFAULT_PRIORITY, PRIORITIES, PriorityRoundRobin
from repro.system import SimulationReport
from repro.workloads import get_workload

#: Edges (milliseconds) of the ``service.latency.*`` histograms.
LATENCY_EDGES_MS = [10, 50, 250, 1000, 5000, 30000]

#: Every state a ticket can be in.
TICKET_STATES = ("queued", "running", "done", "cancelled", "expired", "failed")

#: Finished tickets kept for ``status`` lookups before being forgotten.
HISTORY_LIMIT = 1024


class ServiceError(Exception):
    """A structured, client-visible scheduling failure."""

    def __init__(self, code: str, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


def job_from_spec(spec: dict[str, Any]) -> SweepJob:
    """Build the :class:`SweepJob` a validated wire submission describes.

    Raises :class:`KeyError` for a workload the registry does not know —
    the server maps that to an ``unknown_workload`` response.
    """
    return SweepJob(
        spec=get_workload(spec["workload"]),
        config=scheme_config(spec["scheme"], n_gpus=spec["gpus"]),
        seed=spec["seed"],
        scale=spec["scale"],
        n_lanes=spec["n_lanes"],
    )


@dataclass
class Ticket:
    """One client submission: its identity, its future, its lifecycle."""

    job_id: str
    client: str
    job: SweepJob
    future: asyncio.Future
    state: str = "queued"
    source: str = "run"  # "run" | "coalesced" | "cache"
    submitted_at: float = field(default_factory=perf_counter)
    deadline_handle: asyncio.TimerHandle | None = None
    report: SimulationReport | None = None
    execution: "_Execution | None" = None

    def describe(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "client": self.client,
            "cell": self.job.describe(),
            "state": self.state,
            "source": self.source,
            "priority": (
                self.execution.priority if self.execution is not None else DEFAULT_PRIORITY
            ),
        }


class _Execution:
    """One unit of simulation work and the tickets subscribed to it."""

    __slots__ = ("job", "key", "trace_key", "client", "priority", "tickets", "state")

    def __init__(
        self, job: SweepJob, key: object, client: str, priority: str = DEFAULT_PRIORITY
    ) -> None:
        self.job = job
        self.key = key  # job_key string, or the SweepJob itself when uncacheable
        self.trace_key = job_trace_key(job)
        self.client = client  # fairness queue this execution waits in
        self.priority = priority  # admission class it waits at
        self.tickets: list[Ticket] = []
        self.state = "queued"

    def live_tickets(self) -> list[Ticket]:
        return [t for t in self.tickets if not t.future.done()]


class SimulationService:
    """The async scheduler: admission, dedup, batching, fairness, drain.

    ``jobs`` / ``mode`` / ``cache`` configure the underlying
    :class:`SweepRunner`; ``max_queue`` bounds admitted-but-unstarted
    executions; ``run_batch`` (tests only) replaces the synchronous batch
    executor.  Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly from a running event loop.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        max_queue: int = 64,
        mode: str = "auto",
        fleet_addr: str | None = None,
        fleet_key: bytes | None = None,
        run_batch: Callable[[list[SweepJob]], list[SimulationReport]] | None = None,
    ) -> None:
        if fleet_addr is not None:
            mode = "fleet"
        self.runner = SweepRunner(
            jobs=jobs, cache=cache, mode=mode, fleet_addr=fleet_addr, fleet_key=fleet_key
        )
        self.cache = cache
        self.max_queue = max_queue
        self.telemetry = Telemetry()
        self._run_batch = run_batch or self.runner.run_jobs
        self._executor: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._draining = False
        self._running = False
        # admission state: strict priority classes, round-robin clients
        # within each, FIFO per client (shared policy with the fleet).
        self._queue = PriorityRoundRobin()
        self._inflight: dict[object, _Execution] = {}  # key -> queued/running execution
        self._batch_in_flight = False
        # ticket registry (bounded history)
        self._tickets: dict[str, Ticket] = {}
        self._finished: deque[str] = deque()
        self._next_id = 0
        self._batch_ewma_s = 1.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._draining = False
        self._drained.clear()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service"
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    async def stop(self) -> None:
        """Hard stop: cancel the dispatcher, release the worker thread."""
        self._running = False
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    async def drain(self) -> None:
        """Stop admitting, finish every admitted execution, then return."""
        self._draining = True
        self._wake.set()
        if len(self._queue) == 0 and not self._batch_in_flight:
            self._drained.set()
        await self._drained.wait()

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Submission / cancellation / introspection
    # ------------------------------------------------------------------
    def submit(
        self,
        job: SweepJob,
        *,
        client: str = "anonymous",
        priority: str = DEFAULT_PRIORITY,
        deadline_s: float | None = None,
    ) -> Ticket:
        """Admit one cell; returns its :class:`Ticket` (await ``.future``).

        Raises :class:`ServiceError` with code ``draining`` or
        ``queue_full`` (both retryable rejections) or ``bad_request``
        for an unknown priority class.
        """
        if priority not in PRIORITIES:
            raise ServiceError(
                "bad_request",
                f"unknown priority {priority!r}; choose from {', '.join(PRIORITIES)}",
            )
        self.telemetry.counter("service.submitted").add(1)
        loop = asyncio.get_running_loop()
        ticket = Ticket(
            job_id=self._issue_id(),
            client=client,
            job=job,
            future=loop.create_future(),
        )
        # A submission nobody awaits (wait=false, cancels, drains) must not
        # warn "exception was never retrieved" at teardown.
        ticket.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        if self._draining:
            self.telemetry.counter("service.rejected").add(1)
            raise ServiceError("draining", "server is draining; resubmit elsewhere/later")

        key: object = job_key(job)
        if key is None:
            key = job  # uncacheable cells still dedup structurally
        # 1. completed cells short-circuit through the persistent cache
        elif self.cache is not None:
            cached = self.cache.load(key)
            if cached is not None:
                self.telemetry.counter("service.cache_hits").add(1)
                self._register(ticket)
                self._resolve(ticket, cached, source="cache")
                return ticket
        # 2. identical in-flight cells coalesce to one execution
        execution = self._inflight.get(key)
        if execution is not None:
            self.telemetry.counter("service.coalesced").add(1)
            ticket.source = "coalesced"
            ticket.state = execution.state
            ticket.execution = execution
            execution.tickets.append(ticket)
            self._register(ticket)
            self._arm_deadline(ticket, deadline_s, execution)
            return ticket
        # 3. bounded admission: reject-with-retry-after, never drop
        if len(self._queue) >= self.max_queue:
            self.telemetry.counter("service.rejected").add(1)
            raise ServiceError(
                "queue_full",
                f"admission queue is full ({self.max_queue} executions)",
                retry_after_s=round(max(0.1, self._batch_ewma_s), 3),
            )
        self.telemetry.counter("service.admitted").add(1)
        execution = _Execution(job, key, client, priority)
        ticket.execution = execution
        execution.tickets.append(ticket)
        self._inflight[key] = execution
        self._queue.push(execution, client=client, priority=priority)
        self.telemetry.gauge("service.queue.depth").set(len(self._queue))
        self._register(ticket)
        self._arm_deadline(ticket, deadline_s, execution)
        self._wake.set()
        return ticket

    def submit_spec(self, request: dict[str, Any]) -> Ticket:
        """Admit a validated wire submission (see :func:`job_from_spec`)."""
        return self.submit(
            job_from_spec(request["job"]),
            client=request.get("client", "anonymous"),
            priority=request.get("priority", DEFAULT_PRIORITY),
            deadline_s=request.get("deadline_s"),
        )

    def cancel(self, job_id: str) -> str:
        """Cancel a submission; returns the ticket's resulting state.

        A queued ticket is resolved ``cancelled`` immediately (and its
        execution is dequeued when no other subscriber remains); an
        in-flight ticket detaches — the simulation completes, warms the
        cache, and only this subscriber sees ``cancelled``.  Finished
        tickets are left untouched.
        """
        ticket = self._tickets.get(job_id)
        if ticket is None:
            raise ServiceError("unknown_job", f"no such job {job_id!r}")
        if ticket.future.done():
            return ticket.state
        self.telemetry.counter("service.cancelled").add(1)
        self._reject(ticket, ServiceError("cancelled", f"job {job_id} cancelled"), "cancelled")
        self._detach(ticket)
        return ticket.state

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        """Queue snapshot, or one ticket's state when ``job_id`` is given."""
        if job_id is not None:
            ticket = self._tickets.get(job_id)
            if ticket is None:
                raise ServiceError("unknown_job", f"no such job {job_id!r}")
            return {"job": ticket.describe()}
        states: dict[str, int] = {}
        for ticket in self._tickets.values():
            states[ticket.state] = states.get(ticket.state, 0) + 1
        return {
            "queue_depth": len(self._queue),
            "max_queue": self.max_queue,
            "draining": self._draining,
            "states": states,
            "jobs": [
                t.describe()
                for t in self._tickets.values()
                if t.state in ("queued", "running")
            ],
        }

    def metrics_snapshot(self) -> dict[str, dict]:
        """The ``service.*`` registry snapshot (deterministic, JSON-safe)."""
        return self.telemetry.snapshot()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _issue_id(self) -> str:
        self._next_id += 1
        return f"j{self._next_id:06d}"

    def _register(self, ticket: Ticket) -> None:
        self._tickets[ticket.job_id] = ticket
        ticket.future.add_done_callback(lambda _f: self._remember(ticket))

    def _remember(self, ticket: Ticket) -> None:
        """Move a finished ticket into bounded history."""
        self._finished.append(ticket.job_id)
        while len(self._finished) > HISTORY_LIMIT:
            self._tickets.pop(self._finished.popleft(), None)

    def _arm_deadline(
        self, ticket: Ticket, deadline_s: float | None, execution: _Execution
    ) -> None:
        if deadline_s is None:
            return
        loop = asyncio.get_running_loop()
        ticket.deadline_handle = loop.call_later(deadline_s, self._expire, ticket)

    def _expire(self, ticket: Ticket) -> None:
        if ticket.future.done():
            return
        self.telemetry.counter("service.expired").add(1)
        self._reject(
            ticket,
            ServiceError(
                "deadline_exceeded", f"job {ticket.job_id} missed its deadline"
            ),
            "expired",
        )
        self._detach(ticket)

    def _reject(self, ticket: Ticket, exc: ServiceError, state: str) -> None:
        ticket.state = state
        if ticket.deadline_handle is not None:
            ticket.deadline_handle.cancel()
            ticket.deadline_handle = None
        if not ticket.future.done():
            ticket.future.set_exception(exc)

    def _resolve(self, ticket: Ticket, report: SimulationReport, source: str | None = None) -> None:
        ticket.state = "done"
        if source is not None:
            ticket.source = source
        if ticket.deadline_handle is not None:
            ticket.deadline_handle.cancel()
            ticket.deadline_handle = None
        ticket.report = report
        self.telemetry.counter("service.served").add(1)
        self.telemetry.histogram("service.latency.queue_ms", LATENCY_EDGES_MS).record(
            (perf_counter() - ticket.submitted_at) * 1000.0
        )
        if not ticket.future.done():
            ticket.future.set_result(report)

    def _detach(self, ticket: Ticket) -> None:
        """Drop a dead ticket from its execution; dequeue orphaned work."""
        execution = ticket.execution
        if execution is None:
            return  # cache-hit tickets never joined an execution
        if execution.state == "queued" and not execution.live_tickets():
            if self._queue.remove(execution):
                self.telemetry.gauge("service.queue.depth").set(len(self._queue))
            self._inflight.pop(execution.key, None)
            if self._draining:
                self._wake.set()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Execution]:
        """Next priority/round-robin execution plus every queued trace-key
        sibling (siblings ride along regardless of their class — the trace
        is loaded anyway, and a free ride cannot delay the head)."""
        head = self._queue.pop()
        if head is None:
            return []
        batch = [head]
        if head.trace_key is not None:
            batch.extend(self._queue.take(lambda e: e.trace_key == head.trace_key))
        self.telemetry.gauge("service.queue.depth").set(len(self._queue))
        for execution in batch:
            execution.state = "running"
            for ticket in execution.tickets:
                if not ticket.future.done():
                    ticket.state = "running"
        return batch

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                self._batch_in_flight = True
                try:
                    await self._execute(loop, batch)
                finally:
                    self._batch_in_flight = False
            if self._draining and len(self._queue) == 0:
                self._drained.set()
                return

    async def _execute(self, loop: asyncio.AbstractEventLoop, batch: list[_Execution]) -> None:
        jobs = [execution.job for execution in batch]
        started = perf_counter()
        try:
            reports = await loop.run_in_executor(self._executor, self._run_batch, jobs)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.telemetry.counter("service.failed").add(len(batch))
            failure = ServiceError("execution_failed", f"batch failed: {exc}")
            for execution in batch:
                execution.state = "failed"
                del self._inflight[execution.key]
                for ticket in execution.tickets:
                    if not ticket.future.done():
                        self._reject(ticket, failure, "failed")
            return
        elapsed = perf_counter() - started
        self._batch_ewma_s = 0.7 * self._batch_ewma_s + 0.3 * elapsed
        self.telemetry.counter("service.batches").add(1)
        self.telemetry.histogram("service.latency.run_ms", LATENCY_EDGES_MS).record(
            elapsed * 1000.0
        )
        for execution, report in zip(batch, reports):
            execution.state = "done"
            del self._inflight[execution.key]
            for ticket in execution.tickets:
                if not ticket.future.done():
                    self._resolve(ticket, report)


__all__ = [
    "HISTORY_LIMIT",
    "LATENCY_EDGES_MS",
    "TICKET_STATES",
    "ServiceError",
    "SimulationService",
    "Ticket",
    "job_from_spec",
]
