"""Synchronous client for the simulation service (``submit`` / ``status``).

A thin blocking wrapper over the NDJSON socket protocol: connect to the
server's Unix socket, send one request line, read one response line.
Used by the ``repro-sim submit`` / ``repro-sim status`` / ``repro-sim
cancel`` subcommands, by the CI smoke (two concurrent clients), and by
the end-to-end tests.  The client never interprets reports — it hands
back the decoded response objects so callers can render the canonical
JSON themselves (:func:`repro.service.protocol.canonical_report_json`).
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any

from repro.service import protocol


class ServiceUnavailable(ConnectionError):
    """The server socket is absent or refused the connection."""


class ServiceClient:
    """One blocking connection to a running ``repro-sim serve``."""

    def __init__(self, socket_path: str | Path, timeout: float | None = None) -> None:
        self.socket_path = Path(socket_path)
        self._buffer = b""
        try:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(self.socket_path))
        except OSError as exc:
            raise ServiceUnavailable(
                f"no simulation service at {self.socket_path} ({exc}); "
                "is `repro-sim serve` running?"
            ) from exc

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request line and block for its response line."""
        self._sock.sendall(protocol.encode(message))
        return protocol.decode(self._read_line())

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServiceUnavailable(
                    f"service at {self.socket_path} closed the connection"
                )
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        workload: str,
        *,
        scheme: str = "batching",
        gpus: int = 4,
        seed: int = 1,
        scale: float = 1.0,
        n_lanes: int = 8,
        client: str = "anonymous",
        wait: bool = True,
        priority: str = "normal",
        deadline_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one cell; with ``wait`` the response carries the report."""
        return self.request(
            {
                "op": "submit",
                "client": client,
                "wait": wait,
                "priority": priority,
                "deadline_s": deadline_s,
                "job": {
                    "workload": workload,
                    "scheme": scheme,
                    "gpus": gpus,
                    "seed": seed,
                    "scale": scale,
                    "n_lanes": n_lanes,
                },
            }
        )

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def metrics(self) -> dict[str, Any]:
        return self.request({"op": "metrics"})


__all__ = ["ServiceClient", "ServiceUnavailable"]
