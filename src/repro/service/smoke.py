"""CI entry: end-to-end service smoke against a real server subprocess.

Starts ``repro-sim serve`` as a child process, submits a tiny matrix
from two *concurrent* clients, asserts every served report is
byte-identical (canonical JSON) to the same cell run directly through
:class:`~repro.runner.sweep.SweepRunner`, exercises ``status`` and
``metrics``, then SIGTERMs the server and requires a clean drained
exit.  Run by the ``service-smoke`` CI job under a wall-clock guard::

    PYTHONPATH=src timeout 600 python -c \
        "from repro.service.smoke import smoke; smoke()"

Raises :class:`AssertionError` (or times out) on any contract breach.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.configs import scheme_config
from repro.runner import SweepJob, SweepRunner
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.protocol import canonical_report_json
from repro.workloads import get_workload

#: The tiny matrix both clients submit: one workload, three schemes.
MATRIX = [("fir", scheme) for scheme in ("unsecure", "private", "batching")]


def _wait_for_server(socket_path: Path, deadline_s: float = 30.0) -> None:
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        if socket_path.exists():
            try:
                with ServiceClient(socket_path, timeout=5.0) as client:
                    response = client.ping()
                    assert response.get("ok"), f"ping failed: {response}"
                    return
            except ServiceUnavailable:
                pass
        time.sleep(0.1)
    raise AssertionError(f"server socket {socket_path} never came up")


def _client_session(socket_path: Path, name: str, gpus: int, scale: float) -> list[str]:
    """One client's session: submit the matrix, return canonical JSONs."""
    rendered = []
    with ServiceClient(socket_path, timeout=300.0) as client:
        for workload, scheme in MATRIX:
            response = client.submit(
                workload, scheme=scheme, gpus=gpus, scale=scale, client=name
            )
            assert response.get("ok"), f"{name}: submit failed: {response}"
            assert response["state"] == "done"
            rendered.append(canonical_report_json(response["report"]))
        status = client.status()
        assert status.get("ok"), f"{name}: status failed: {status}"
    return rendered


def smoke(gpus: int = 2, scale: float = 0.1) -> None:
    socket_path = Path(tempfile.mkdtemp(prefix="repro-service-")) / "smoke.sock"
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(socket_path), "--no-cache"],
        env=env,
    )
    try:
        _wait_for_server(socket_path)

        # Two concurrent clients submit the same tiny matrix.
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_client_session, socket_path, name, gpus, scale)
                for name in ("client-a", "client-b")
            ]
            served_a, served_b = [f.result(timeout=300) for f in futures]

        # Scheduler telemetry is live and accounted.
        with ServiceClient(socket_path, timeout=30.0) as client:
            metrics = client.metrics()
        assert metrics.get("ok"), f"metrics op failed: {metrics}"
        served = metrics["metrics"]["service.served"]["value"]
        assert served == 2 * len(MATRIX), f"expected {2 * len(MATRIX)} served, got {served}"

        # Byte-identical to the direct runner (the determinism contract).
        runner = SweepRunner(jobs=1)
        direct = runner.run_jobs(
            [
                SweepJob(
                    spec=get_workload(workload),
                    config=scheme_config(scheme, n_gpus=gpus),
                    seed=1,
                    scale=scale,
                )
                for workload, scheme in MATRIX
            ]
        )
        expected = [canonical_report_json(report) for report in direct]
        assert served_a == expected, "client-a reports differ from direct runner"
        assert served_b == expected, "client-b reports differ from direct runner"

        # Graceful drain on SIGTERM.
        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=60)
        assert code == 0, f"server exited {code} instead of draining cleanly"
        assert not socket_path.exists(), "server left its socket behind"
        server = None
        print(f"service smoke OK: {2 * len(MATRIX)} cells served byte-identical, clean drain")
    finally:
        if server is not None and server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    smoke()
