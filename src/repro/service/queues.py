"""Priority-class fair queuing shared by the service scheduler and the fleet.

One admission-queue policy, two consumers: the Unix-socket simulation
service (``repro-sim serve``) drains client submissions through it, and
the fleet coordinator (``repro-sim fleet coordinator``) drains sweep work
units through the very same class.  The policy:

* **strict priority across classes** — while any ``high`` item is queued,
  no ``normal`` or ``low`` item is dispatched (and likewise ``normal``
  over ``low``).  Priorities are for *operators*: an interactive
  debugging client outranks the weekly full-matrix sweep by declaring
  itself ``high``, and a best-effort backfill declares ``low``;
* **round-robin across clients within a class** — one bulk submitter
  cannot starve another client *of the same class*: clients take turns,
  FIFO within each client, so every client with queued work is served
  within one full rotation (the starvation-freedom property
  ``tests/test_service.py`` pins down);
* starvation *across* classes is accepted by design — that is what
  "strict" means — and is the operator's dial, not the scheduler's.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator

#: Admission classes, highest first.  The default sits in the middle so
#: both directions are available without reconfiguring existing clients.
PRIORITIES = ("high", "normal", "low")

DEFAULT_PRIORITY = "normal"


class PriorityRoundRobin:
    """Strict-priority classes, round-robin clients within, FIFO per client."""

    def __init__(self) -> None:
        # (priority, client) -> FIFO of items
        self._queues: dict[tuple[str, str], deque[Any]] = {}
        # priority -> rotation of clients holding queued work
        self._rotation: dict[str, deque[str]] = {p: deque() for p in PRIORITIES}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, item: Any, *, client: str, priority: str = DEFAULT_PRIORITY) -> None:
        """Enqueue ``item`` for ``client`` at ``priority``."""
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {', '.join(PRIORITIES)}"
            )
        queue = self._queues.setdefault((priority, client), deque())
        # remove()/take() may have emptied the queue while the client kept
        # its (now stale) rotation slot — don't grant a second one.
        if not queue and client not in self._rotation[priority]:
            self._rotation[priority].append(client)
        queue.append(item)
        self._count += 1

    def pop(self) -> Any | None:
        """Dispatch the next item, or None when nothing is queued.

        Scans classes strictly highest-first; within the class takes the
        head of the next client in rotation.  A client with more items
        queued keeps its place in the rotation (at the back), so siblings
        from other clients interleave.
        """
        for priority in PRIORITIES:
            rotation = self._rotation[priority]
            while rotation:
                client = rotation.popleft()
                queue = self._queues.get((priority, client))
                if not queue:
                    continue  # emptied by remove()/take()
                item = queue.popleft()
                self._count -= 1
                if queue:
                    rotation.append(client)
                return item
        return None

    def remove(self, item: Any) -> bool:
        """Remove one queued item wherever it sits; False if not queued."""
        for queue in self._queues.values():
            try:
                queue.remove(item)
            except ValueError:
                continue
            self._count -= 1
            return True
        return False

    def take(self, predicate: Callable[[Any], bool]) -> list[Any]:
        """Remove and return every queued item matching ``predicate``.

        Order is deterministic: classes highest-first, clients in rotation
        order, FIFO within a client — the order :meth:`pop` would have
        produced.  Used to pull trace-key siblings into a batch that is
        being dispatched anyway.
        """
        taken: list[Any] = []
        for priority in PRIORITIES:
            for client in list(self._rotation[priority]):
                queue = self._queues.get((priority, client))
                if not queue:
                    continue
                matched = [item for item in queue if predicate(item)]
                for item in matched:
                    queue.remove(item)
                taken.extend(matched)
        self._count -= len(taken)
        return taken

    def __iter__(self) -> Iterator[Any]:
        """Every queued item (no particular cross-client order)."""
        for queue in self._queues.values():
            yield from queue


__all__ = ["DEFAULT_PRIORITY", "PRIORITIES", "PriorityRoundRobin"]
