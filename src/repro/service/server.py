"""The ``repro-sim serve`` front door: NDJSON over a Unix domain socket.

:class:`SimulationServer` accepts local stream connections, reads one
JSON request per line, and answers one JSON response per line (schema in
:mod:`repro.service.protocol`, reference in ``docs/SERVICE.md``).  A
``submit`` with ``wait=true`` holds its connection open until the
scheduler resolves the ticket and then returns the full report dict;
``wait=false`` returns the job id immediately for later ``status``
polling.  Connections are independent tasks, so a client waiting on a
long simulation never blocks another client's ``status`` or ``cancel``.

:func:`run_server` is the blocking entry point the CLI calls: it builds
the :class:`~repro.service.scheduler.SimulationService`, binds the
socket, installs SIGTERM/SIGINT handlers, and on the first signal drains
gracefully — admission stops (``draining`` rejections), every admitted
execution completes and its waiters get their responses, then the
process exits 0.  A second signal aborts immediately.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
from pathlib import Path
from typing import Any

from repro.runner.serialize import report_to_dict

from repro.service import protocol
from repro.service.scheduler import ServiceError, SimulationService

#: Default socket path; override with ``--socket`` (or tests' tmp dirs).
DEFAULT_SOCKET = Path("results") / "repro-sim.sock"


def _error_response(exc: ServiceError) -> dict[str, Any]:
    extra = {}
    if exc.retry_after_s is not None:
        extra["retry_after_s"] = exc.retry_after_s
    return protocol.error(exc.code, str(exc), **extra)


class SimulationServer:
    """Socket front end over one :class:`SimulationService`."""

    def __init__(self, service: SimulationService, socket_path: str | Path) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy = 0  # requests currently being answered

    async def start(self) -> None:
        await self.service.start()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()  # stale socket from a killed server
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )

    async def drain_and_stop(self, settle_s: float = 5.0) -> None:
        """Graceful shutdown: drain the queue, flush waiters, close."""
        if self._server is not None:
            self._server.close()  # no new connections
        await self.service.drain()  # admitted work completes, waiters resolve
        # Give handler tasks a moment to write their final responses.
        deadline = asyncio.get_running_loop().time() + settle_s
        while self._busy and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        await self.service.stop()
        with contextlib.suppress(OSError):
            self.socket_path.unlink()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self._busy += 1
                try:
                    response = await self._respond(line)
                finally:
                    self._busy -= 1
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _respond(self, line: bytes) -> dict[str, Any]:
        try:
            request = protocol.validate_request(protocol.decode(line))
        except protocol.ProtocolError as exc:
            return protocol.error("bad_request", str(exc))
        try:
            return await self._dispatch(request)
        except ServiceError as exc:
            return _error_response(exc)
        except Exception as exc:  # a handler bug must not kill the connection
            return protocol.error("internal", f"{type(exc).__name__}: {exc}")

    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request["op"]
        if op == "ping":
            return protocol.ok(
                server="repro-sim", protocol=protocol.PROTOCOL_VERSION, pid=os.getpid()
            )
        if op == "metrics":
            return protocol.ok(metrics=self.service.metrics_snapshot())
        if op == "status":
            return protocol.ok(**self.service.status(request.get("job_id")))
        if op == "cancel":
            state = self.service.cancel(request["job_id"])
            return protocol.ok(job_id=request["job_id"], state=state)
        assert op == "submit", f"unhandled op {op!r}"
        try:
            ticket = self.service.submit_spec(request)
        except KeyError:
            return protocol.error(
                "unknown_workload",
                f"unknown workload {request['job']['workload']!r}",
            )
        if not request["wait"]:
            return protocol.ok(job_id=ticket.job_id, state=ticket.state, source=ticket.source)
        try:
            report = await asyncio.shield(ticket.future)
        except ServiceError as exc:
            response = _error_response(exc)
            response["job_id"] = ticket.job_id
            return response
        return protocol.ok(
            job_id=ticket.job_id,
            state="done",
            source=ticket.source,
            report=report_to_dict(report),
        )


async def _serve(socket_path: str | Path, service: SimulationService) -> int:
    server = SimulationServer(service, socket_path)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix event loop; rely on KeyboardInterrupt
    print(f"repro-sim serve: listening on {server.socket_path} (pid {os.getpid()})", flush=True)
    try:
        await stop.wait()
        print("repro-sim serve: draining...", flush=True)
        await server.drain_and_stop()
        print("repro-sim serve: drained, bye", flush=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return 0


def run_server(
    socket_path: str | Path | None = None,
    *,
    jobs: int | None = None,
    max_queue: int = 64,
    cache=None,
    mode: str = "auto",
    fleet_addr: str | None = None,
    fleet_key: bytes | None = None,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, exit 0.

    With ``fleet_addr`` the service delegates batch execution to a fleet
    coordinator (falling back to local serial execution when the fleet is
    unreachable) — the local socket API is unchanged.
    """
    service = SimulationService(
        jobs=jobs,
        cache=cache,
        max_queue=max_queue,
        mode=mode,
        fleet_addr=fleet_addr,
        fleet_key=fleet_key,
    )
    try:
        return asyncio.run(_serve(socket_path or DEFAULT_SOCKET, service))
    except KeyboardInterrupt:
        return 0


__all__ = ["DEFAULT_SOCKET", "SimulationServer", "run_server"]
