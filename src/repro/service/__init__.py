"""Simulation-as-a-service: a long-lived queued front door for sweeps.

Everything built for one-shot sweeps — the result cache, the trace
store, process-pool fan-out, telemetry — behind a socket server so many
clients can share one warm scheduler::

    repro-sim serve --socket /tmp/repro.sock          # the server
    repro-sim submit fir --scheme batching \\
        --socket /tmp/repro.sock                      # a client

Modules: :mod:`~repro.service.protocol` (NDJSON wire schema),
:mod:`~repro.service.scheduler` (admission queue, single-flight dedup,
trace-key batching, fairness, deadlines, drain),
:mod:`~repro.service.server` (asyncio socket front end),
:mod:`~repro.service.client` (blocking client).  The full contract —
scheduling policy, backpressure, determinism — is documented in
``docs/SERVICE.md``.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.queues import DEFAULT_PRIORITY, PRIORITIES, PriorityRoundRobin
from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_report_json,
)
from repro.service.scheduler import ServiceError, SimulationService, Ticket, job_from_spec
from repro.service.server import DEFAULT_SOCKET, SimulationServer, run_server

__all__ = [
    "DEFAULT_PRIORITY",
    "DEFAULT_SOCKET",
    "ERROR_CODES",
    "PRIORITIES",
    "PriorityRoundRobin",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SimulationServer",
    "SimulationService",
    "Ticket",
    "canonical_report_json",
    "job_from_spec",
    "run_server",
]
